// Package bgppipe is the wire-format BGP message pipeline: one typed
// stream of *bgp.Message values with direction and per-message metadata,
// processed by composable stages in the style of bgpfix/bgpipe. It
// unifies what were three disjoint wiring surfaces — bgpsession's
// callback Handler, routeserver's HandleUpdateBatch slices, and engine
// Drivers — behind a single Stage interface:
//
//	      RX (toward the route server)
//	speaker ──► mrt ──► ris-live ──► ... ──► rsfeed ──► RouteServer
//	   ▲                                        │
//	   └────────────── TX (exports) ◄───────────┘
//
// Producers (a Speaker terminating a TCP session, an MRT or RIS-live
// replay) inject RX messages; the RSFeed stage applies them to the
// route server and emits the coalesced export batches back as TX
// messages; TX consumers (the same Speaker, or a Listen stage routing
// by peer) put them back on the wire. Each direction is an ordered
// callback line driven by one goroutine, so stage processing within a
// direction is serialized and deterministic.
package bgppipe

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"stellar/internal/bgp"
)

// Dir is a message's direction through the pipe.
type Dir uint8

// Directions. RX flows toward the local route server (messages received
// from peers or replayed from captures); TX flows away from it (exports
// owed to peers).
const (
	DirRX Dir = iota
	DirTX
	numDirs
)

func (d Dir) String() string {
	switch d {
	case DirRX:
		return "RX"
	case DirTX:
		return "TX"
	default:
		return fmt.Sprintf("Dir(%d)", uint8(d))
	}
}

// Event is a session lifecycle marker traveling the pipe alongside BGP
// messages, so consumers learn about peers appearing and vanishing in
// stream order.
type Event uint8

// Events.
const (
	EventNone Event = iota
	// EventPeerUp announces a peer: a session reached Established (the
	// message carries the peer's OPEN) or a replay emitted the peer's
	// first record.
	EventPeerUp
	// EventPeerDown retires a peer: session closed or replay ended. Err
	// carries the terminal session error, if any.
	EventPeerDown
)

func (e Event) String() string {
	switch e {
	case EventNone:
		return "none"
	case EventPeerUp:
		return "peer-up"
	case EventPeerDown:
		return "peer-down"
	default:
		return fmt.Sprintf("Event(%d)", uint8(e))
	}
}

// Msg is one element of the message stream: a BGP message (or a pure
// lifecycle event) plus the metadata every stage needs — which peer it
// belongs to, when it happened, and which way it flows.
type Msg struct {
	// Dir is the message's direction (set by Pipe.Send).
	Dir Dir
	// Seq is the per-direction sequence number (set by Pipe.Send).
	Seq uint64
	// Peer names the session or replay source the message belongs to.
	// On TX it addresses the target peer; empty broadcasts to every
	// attached session.
	Peer string
	// PeerAS and PeerIP identify the peer when known (replay records and
	// established sessions carry them; pure exports may not).
	PeerAS uint32
	PeerIP netip.Addr
	// Time is the message timestamp: the capture time for replayed
	// records, the receive time for live sessions.
	Time time.Time
	// BGP is the message itself; nil for pure lifecycle events.
	BGP bgp.Message
	// Event marks session lifecycle transitions (EventNone for ordinary
	// messages).
	Event Event
	// Err carries the terminal session error on EventPeerDown.
	Err error
	// Reinjected marks a message re-queued by Pipe.Reinject (a fault
	// filter duplicating or delaying it); filters skip such messages so
	// a duplicate is never re-duplicated.
	Reinjected bool
}

// Update returns the message as an *bgp.Update, or nil.
func (m *Msg) Update() *bgp.Update {
	u, _ := m.BGP.(*bgp.Update)
	return u
}

func (m *Msg) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s #%d", m.Dir, m.Seq)
	if m.Peer != "" {
		fmt.Fprintf(&b, " peer=%s", m.Peer)
	}
	if m.Event != EventNone {
		fmt.Fprintf(&b, " event=%s", m.Event)
	}
	if m.BGP != nil {
		fmt.Fprintf(&b, " %v", m.BGP.Type())
	}
	return b.String()
}

// Handler processes one message on a direction line. Returning false
// drops the message: callbacks attached later never see it. Handlers on
// one line run on a single goroutine in attach order, so they need no
// internal locking against each other.
type Handler func(*Msg) bool

// Stage is one processing element attached to a pipe. Attach registers
// the stage's handlers and validates its configuration; Run produces
// messages (blocking until the stage is done producing — a session
// closing, a replay reaching EOF, a listener shut down; stages that
// only consume return immediately); Stop asks a blocked Run to return.
//
// Stages must finish every Send before Run returns: once all stage Runs
// have returned the pipe closes its lines.
type Stage interface {
	Name() string
	Attach(p *Pipe) error
	Run() error
	Stop() error
}

// Options parameterizes a pipe.
type Options struct {
	// Buffer is the per-direction channel depth (default 64). A full
	// line blocks Send — backpressure to the producing session or
	// replay.
	Buffer int
}

// ErrClosed is returned by Send on a stopped line: the pipe retired the
// direction after every stage's Run returned. Producers treat it as
// "stop producing", never as data loss — a well-behaved stage finishes
// its sends before Run returns.
var ErrClosed = errors.New("bgppipe: pipe closed")

// line is one direction's bounded queue plus its ordered handlers.
type line struct {
	ch       chan *Msg
	done     chan struct{} // closed: the line accepts no further Send
	handlers []Handler
	seq      uint64
	mu       sync.Mutex // guards seq against concurrent Send
	// inject holds messages re-queued by Reinject; touched only on the
	// drain goroutine (handlers run there), so it needs no lock.
	inject []*Msg
}

// Pipe carries the two directed message streams and the attached
// stages. Build with New, Attach stages, then Start; Wait blocks until
// every stage's Run returned and both lines drained.
type Pipe struct {
	lines  [numDirs]*line
	stages []Stage

	started  bool
	runErrs  []error
	errMu    sync.Mutex
	runWG    sync.WaitGroup // stage Run goroutines
	lineWG   sync.WaitGroup // line drain goroutines
	stopOnce sync.Once
}

// New creates an empty pipe.
func New(opts Options) *Pipe {
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	p := &Pipe{}
	for d := range p.lines {
		p.lines[d] = &line{ch: make(chan *Msg, opts.Buffer), done: make(chan struct{})}
	}
	return p
}

// OnMsg attaches a handler to one direction, after every handler
// already attached. Stages call it from Attach.
func (p *Pipe) OnMsg(dir Dir, h Handler) {
	if p.started {
		panic("bgppipe: OnMsg after Start")
	}
	l := p.lines[dir]
	l.handlers = append(l.handlers, h)
}

// Attach adds a stage to the pipe, giving it the chance to register
// handlers. Stages run in attach order on each line.
func (p *Pipe) Attach(s Stage) error {
	if p.started {
		return errors.New("bgppipe: Attach after Start")
	}
	if err := s.Attach(p); err != nil {
		return fmt.Errorf("bgppipe: attach %s: %w", s.Name(), err)
	}
	p.stages = append(p.stages, s)
	return nil
}

// Send injects a message into its direction's line, stamping direction
// sequence (and the current time when the message carries none). It
// blocks when the line is full, and returns ErrClosed — instead of
// blocking forever — when the line was already retired (every stage's
// Run returned and the pipe moved to shutdown).
func (p *Pipe) Send(dir Dir, m *Msg) error {
	l := p.lines[dir]
	select {
	case <-l.done:
		return ErrClosed
	default:
	}
	m.Dir = dir
	l.mu.Lock()
	l.seq++
	m.Seq = l.seq
	l.mu.Unlock()
	if m.Time.IsZero() {
		m.Time = time.Now()
	}
	select {
	case l.ch <- m:
		return nil
	case <-l.done:
		return ErrClosed
	}
}

// Reinject re-queues a message onto dir's line, to be processed by the
// full handler chain after the message currently in flight (and any
// previously reinjected ones). It must only be called from a handler on
// that same line — fault filters use it to duplicate or delay messages
// without deadlocking on the bounded channel they are drained from. The
// message is marked Reinjected.
func (p *Pipe) Reinject(dir Dir, m *Msg) {
	l := p.lines[dir]
	m.Dir = dir
	m.Reinjected = true
	l.mu.Lock()
	l.seq++
	m.Seq = l.seq
	l.mu.Unlock()
	if m.Time.IsZero() {
		m.Time = time.Now()
	}
	l.inject = append(l.inject, m)
}

// Start launches the line goroutines and every stage's Run. The RX line
// closes once all stage Runs returned; the TX line closes after the RX
// line drained (RX handlers — the rsfeed — are TX producers).
func (p *Pipe) Start() {
	if p.started {
		panic("bgppipe: Start twice")
	}
	p.started = true

	rxDone := make(chan struct{})
	p.lineWG.Add(2)
	go func() {
		defer p.lineWG.Done()
		defer close(rxDone)
		p.lines[DirRX].drain()
	}()
	go func() {
		defer p.lineWG.Done()
		p.lines[DirTX].drain()
	}()

	for _, s := range p.stages {
		p.runWG.Add(1)
		go func(s Stage) {
			defer p.runWG.Done()
			if err := s.Run(); err != nil {
				p.errMu.Lock()
				p.runErrs = append(p.runErrs, fmt.Errorf("%s: %w", s.Name(), err))
				p.errMu.Unlock()
			}
		}(s)
	}

	// Closer: when every producer finished, retire the lines in
	// dependency order. The channels are never closed — lines retire by
	// closing done, so a straggler Send gets ErrClosed instead of a
	// panic or a forever-block.
	go func() {
		p.runWG.Wait()
		close(p.lines[DirRX].done)
		<-rxDone
		close(p.lines[DirTX].done)
	}()
}

// drain runs the line's handler chain over every queued message until
// the line retires, then flushes what is still buffered. Every message
// accepted by Send before retirement is processed: stage Runs finish
// their sends before done closes (runWG.Wait happens-before).
func (l *line) drain() {
	for {
		select {
		case m := <-l.ch:
			l.handle(m)
		case <-l.done:
			for {
				select {
				case m := <-l.ch:
					l.handle(m)
				default:
					return
				}
			}
		}
	}
}

// handle runs one message — and everything it reinjects — through the
// handler chain.
func (l *line) handle(m *Msg) {
	for _, h := range l.handlers {
		if !h(m) {
			break
		}
	}
	for len(l.inject) > 0 {
		q := l.inject[0]
		l.inject = l.inject[1:]
		for _, h := range l.handlers {
			if !h(q) {
				break
			}
		}
	}
}

// Stop asks every stage to stop producing. It does not wait; call Wait.
func (p *Pipe) Stop() {
	p.stopOnce.Do(func() {
		for _, s := range p.stages {
			if err := s.Stop(); err != nil {
				p.errMu.Lock()
				p.runErrs = append(p.runErrs, fmt.Errorf("%s: stop: %w", s.Name(), err))
				p.errMu.Unlock()
			}
		}
	})
}

// Wait blocks until every stage's Run returned and both lines drained,
// then returns the joined stage errors (nil for a clean run).
func (p *Pipe) Wait() error {
	p.runWG.Wait()
	p.lineWG.Wait()
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return errors.Join(p.runErrs...)
}
