package bgppipe

import (
	"io"
	"net/netip"
	"strings"
	"testing"

	"stellar/internal/bgp"
)

// risSample is a capture fragment in the ris-live envelope shape: a
// multi-next-hop dual-stack UPDATE with withdrawals, a peer-state
// envelope to skip, an AS_SET path, and a withdraw-only envelope.
const risSample = `{"type":"ris_message","data":{"timestamp":1700000000.25,"peer":"80.81.192.10","peer_asn":"65001","type":"UPDATE","path":[65001,65010],"community":[[65001,100]],"origin":"igp","announcements":[{"next_hop":"80.81.192.10","prefixes":["203.0.113.0/24","2001:db8:100::/48"]},{"next_hop":"80.81.192.99","prefixes":["198.51.100.0/24"]}],"withdrawals":["192.0.2.0/24"]}}
{"type":"ris_message","data":{"timestamp":1700000001,"peer":"80.81.192.20","peer_asn":"65002","type":"RIS_PEER_STATE","state":"connected"}}

{"type":"ris_message","data":{"timestamp":1700000002,"peer":"80.81.192.20","peer_asn":"65002","type":"UPDATE","path":[65002,[65020,65021]],"origin":"incomplete","med":50,"announcements":[{"next_hop":"80.81.192.20","prefixes":["203.0.113.0/24"]}]}}
{"type":"ris_message","data":{"timestamp":1700000003,"peer":"80.81.192.10","peer_asn":"65001","type":"UPDATE","withdrawals":["203.0.113.0/24"]}}`

// TestRISScanner walks the sample stream and pins the envelope-to-UPDATE
// mapping: one UPDATE per (next hop, address family) group, withdrawals
// on the first record, AS_SETs preserved, non-UPDATE envelopes skipped.
func TestRISScanner(t *testing.T) {
	sc := NewRISScanner(strings.NewReader(risSample))

	// Envelope 1 fans out into three updates: v4 + v6 behind the first
	// next hop, v4 behind the second; the withdrawal rides the first.
	r1, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Peer != "AS65001" || r1.PeerAS != 65001 || r1.PeerIP != netip.MustParseAddr("80.81.192.10") {
		t.Fatalf("record 1 attribution: %+v", r1)
	}
	if r1.Time.Unix() != 1700000000 || r1.Time.Nanosecond() != 250000000 {
		t.Fatalf("record 1 time: %v", r1.Time)
	}
	u1 := r1.Msg.(*bgp.Update)
	if len(u1.NLRI) != 1 || u1.NLRI[0].Prefix != netip.MustParsePrefix("203.0.113.0/24") {
		t.Fatalf("record 1 NLRI: %+v", u1.NLRI)
	}
	if u1.Attrs.NextHop != netip.MustParseAddr("80.81.192.10") {
		t.Fatalf("record 1 next hop: %v", u1.Attrs.NextHop)
	}
	if len(u1.Withdrawn) != 1 || u1.Withdrawn[0].Prefix != netip.MustParsePrefix("192.0.2.0/24") {
		t.Fatalf("record 1 withdrawals: %+v", u1.Withdrawn)
	}
	if len(u1.Attrs.Communities) != 1 || u1.Attrs.Communities[0] != bgp.MakeCommunity(65001, 100) {
		t.Fatalf("record 1 communities: %v", u1.Attrs.Communities)
	}
	wantPath := []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{65001, 65010}}}
	if len(u1.Attrs.ASPath) != 1 || u1.Attrs.ASPath[0].Type != wantPath[0].Type ||
		len(u1.Attrs.ASPath[0].ASNs) != 2 {
		t.Fatalf("record 1 path: %+v", u1.Attrs.ASPath)
	}

	r2, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	u2 := r2.Msg.(*bgp.Update)
	if u2.Attrs.MPReach == nil || len(u2.Attrs.MPReach.NLRI) != 1 ||
		u2.Attrs.MPReach.NLRI[0].Prefix != netip.MustParsePrefix("2001:db8:100::/48") {
		t.Fatalf("record 2 should carry the v6 prefix: %+v", u2.Attrs.MPReach)
	}
	if len(u2.Withdrawn) != 0 {
		t.Fatalf("withdrawals leaked onto record 2: %+v", u2.Withdrawn)
	}

	r3, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	u3 := r3.Msg.(*bgp.Update)
	if u3.Attrs.NextHop != netip.MustParseAddr("80.81.192.99") ||
		len(u3.NLRI) != 1 || u3.NLRI[0].Prefix != netip.MustParsePrefix("198.51.100.0/24") {
		t.Fatalf("record 3: %+v", u3)
	}

	// Envelope 2 (peer state) and the blank line are skipped; envelope 3
	// carries an AS_SET and a MED.
	r4, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	u4 := r4.Msg.(*bgp.Update)
	if r4.PeerAS != 65002 {
		t.Fatalf("record 4 attribution: %+v", r4)
	}
	if len(u4.Attrs.ASPath) != 2 || u4.Attrs.ASPath[1].Type != bgp.ASSet {
		t.Fatalf("record 4 AS_SET lost: %+v", u4.Attrs.ASPath)
	}
	if u4.Attrs.MED == nil || *u4.Attrs.MED != 50 {
		t.Fatalf("record 4 MED: %v", u4.Attrs.MED)
	}
	if u4.Attrs.Origin != bgp.OriginIncomplete {
		t.Fatalf("record 4 origin: %v", u4.Attrs.Origin)
	}

	// Envelope 4 is withdraw-only: a single empty-attrs UPDATE.
	r5, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	u5 := r5.Msg.(*bgp.Update)
	if len(u5.NLRI) != 0 || len(u5.Withdrawn) != 1 ||
		u5.Withdrawn[0].Prefix != netip.MustParsePrefix("203.0.113.0/24") {
		t.Fatalf("record 5: %+v", u5)
	}

	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("trailing Next: %v, want io.EOF", err)
	}
}

// TestRISScannerRejectsMalformed pins that garbage inside a ris_message
// is an error, not a silent skip.
func TestRISScannerRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"not-a-number","announcements":[{"next_hop":"10.0.0.1","prefixes":["10.0.0.0/8"]}]}}`,
		`{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"65001","announcements":[{"next_hop":"bogus","prefixes":["10.0.0.0/8"]}]}}`,
		`{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"65001","announcements":[{"next_hop":"10.0.0.1","prefixes":["10.0.0.0/99"]}]}}`,
		`{"type":"ris_message","data":`,
	}
	for i, line := range cases {
		if _, err := NewRISScanner(strings.NewReader(line)).Next(); err == nil || err == io.EOF {
			t.Fatalf("case %d: error swallowed (%v)", i, err)
		}
	}
}

// FuzzRISLive throws mutated JSON at the scanner: no panics, and every
// yielded record must remarshal as a valid BGP message.
func FuzzRISLive(f *testing.F) {
	for _, line := range strings.Split(risSample, "\n") {
		f.Add(line)
	}
	f.Add(`{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"65001","path":[1,[2,3]],"withdrawals":["0.0.0.0/0"]}}`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		sc := NewRISScanner(strings.NewReader(line))
		for i := 0; i < 1<<12; i++ {
			rec, err := sc.Next()
			if err != nil {
				return
			}
			if rec.Msg == nil {
				t.Fatal("record with nil message")
			}
			if _, err := bgp.Marshal(rec.Msg, nil); err != nil {
				t.Fatalf("scanner yielded unmarshalable message: %v", err)
			}
		}
	})
}
