package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ActionKind selects the queue a matching packet is steered into
// (Figure 8): the zero-length dropping queue, the rate-limited shaping
// queue, or the forwarding queue.
type ActionKind int

// Queue actions.
const (
	ActionForward ActionKind = iota
	ActionShape
	ActionDrop
)

func (a ActionKind) String() string {
	switch a {
	case ActionForward:
		return "forward"
	case ActionShape:
		return "shape"
	case ActionDrop:
		return "drop"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(a))
	}
}

// Rule is one installed QoS policy on a port: a classification pattern
// plus the queue action. Shape rules carry the shaping rate; the shaped
// residue that passes the limiter is the telemetry sample the victim
// receives (Section 3.1, "Telemetry").
type Rule struct {
	// ID identifies the rule for updates, withdrawal and telemetry.
	ID string
	// Match is the L2-L4 classification pattern.
	Match Match
	// Action selects the queue.
	Action ActionKind
	// ShapeRateBps is the shaping queue's rate limit in bits/s; used only
	// when Action == ActionShape.
	ShapeRateBps float64

	counters RuleCounters
	// Shaping token bucket state (bits). The data path is lock-free at
	// the port level, so the bucket carries its own small mutex; it is
	// uncontended except when concurrent egress ticks share one shape
	// rule.
	tok       sync.Mutex
	tokens    float64
	burstBits float64
}

// refill advances the token bucket by dt seconds, clamped to the burst.
func (r *Rule) refill(dtSeconds float64) {
	r.tok.Lock()
	r.tokens += r.ShapeRateBps * dtSeconds
	if r.tokens > r.burstBits {
		r.tokens = r.burstBits
	}
	r.tok.Unlock()
}

// consumeTokens takes up to wantBits from the bucket and returns the
// amount granted.
func (r *Rule) consumeTokens(wantBits float64) float64 {
	r.tok.Lock()
	grant := wantBits
	if grant > r.tokens {
		grant = r.tokens
	}
	r.tokens -= grant
	r.tok.Unlock()
	return grant
}

// RuleCounters is the per-rule telemetry exposed to the rule's owner:
// how much traffic matched, and its fate.
type RuleCounters struct {
	MatchedPackets atomic.Int64
	MatchedBytes   atomic.Int64
	DroppedBytes   atomic.Int64 // bytes discarded by drop queue or shaper
	ForwardedBytes atomic.Int64 // bytes passed on (incl. shaped residue)
	ShapedResidue  atomic.Int64 // bytes that passed the shaping queue
}

// CounterSnapshot is a point-in-time copy of the telemetry counters.
type CounterSnapshot struct {
	MatchedPackets int64
	MatchedBytes   int64
	DroppedBytes   int64
	ForwardedBytes int64
	ShapedResidue  int64
}

// Snapshot copies the counters.
func (c *RuleCounters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		MatchedPackets: c.MatchedPackets.Load(),
		MatchedBytes:   c.MatchedBytes.Load(),
		DroppedBytes:   c.DroppedBytes.Load(),
		ForwardedBytes: c.ForwardedBytes.Load(),
		ShapedResidue:  c.ShapedResidue.Load(),
	}
}

// Counters exposes the rule's telemetry counters.
func (r *Rule) Counters() *RuleCounters { return &r.counters }

func (r *Rule) String() string {
	s := fmt.Sprintf("rule %s: match(%s) -> %s", r.ID, r.Match, r.Action)
	if r.Action == ActionShape {
		s += fmt.Sprintf("@%.0fbps", r.ShapeRateBps)
	}
	return s
}
