package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"stellar/internal/netpkt"
)

// Offer is a flow-level traffic aggregate presented to a port's egress
// engine for one simulation tick.
type Offer struct {
	Flow    netpkt.FlowKey
	Bytes   float64
	Packets float64
	// FlowHash optionally carries Flow.Hash() computed once by the
	// traffic generator, so the egress hot loop classifies repeated
	// flows from the per-classifier memo with zero re-hashing. 0 means
	// "not computed"; the engine hashes on demand.
	FlowHash uint64
}

// Disposition is the fate of one offer (or packet) at the egress engine.
type Disposition int

// Dispositions.
const (
	Delivered Disposition = iota
	DroppedByRule
	DroppedByShaper
	DroppedByCongestion
)

func (d Disposition) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case DroppedByRule:
		return "dropped-by-rule"
	case DroppedByShaper:
		return "dropped-by-shaper"
	case DroppedByCongestion:
		return "dropped-by-congestion"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// TickResult summarizes one egress tick on a port.
type TickResult struct {
	// DeliveredBytes went out the member port.
	DeliveredBytes float64
	// RuleDroppedBytes were steered to the zero-length dropping queue.
	RuleDroppedBytes float64
	// ShaperDroppedBytes exceeded a shaping queue's rate.
	ShaperDroppedBytes float64
	// CongestionDroppedBytes exceeded the port capacity in the forward
	// queue (tail drop).
	CongestionDroppedBytes float64
	// DeliveredByFlow maps each offered flow to its delivered bytes,
	// letting callers observe per-peer and per-port traffic shares.
	// Egress always materializes it; EgressStream leaves it nil and
	// streams the per-flow deliveries into a FlowVisitor instead.
	DeliveredByFlow map[netpkt.FlowKey]float64
}

// FlowVisitor receives one delivered flow during an egress tick:
// the flow key, its precomputed FlowKey.Hash (0 when the offer carried
// none) and the bytes that made it out the port. It is the streaming
// alternative to materializing TickResult.DeliveredByFlow; the flow
// monitor's shards sit behind it.
type FlowVisitor func(flow netpkt.FlowKey, flowHash uint64, deliveredBytes float64)

// OfferedBytes returns the total bytes presented this tick.
func (t TickResult) OfferedBytes() float64 {
	return t.DeliveredBytes + t.RuleDroppedBytes + t.ShaperDroppedBytes + t.CongestionDroppedBytes
}

// Port is one member-facing IXP port with an egress QoS engine.
//
// Rule management (InstallRule/RemoveRule) is serialized on an internal
// mutex and recompiles the rule set into an immutable classifier
// published through an atomic pointer (see classifier.go). The data
// path — Classify, Egress, EgressPacket — reads the current classifier
// lock-free, so any number of goroutines can classify traffic while
// rules churn.
type Port struct {
	// Name identifies the port ("AS64512" in the harness).
	Name string
	// MAC is the member router's address on the peering LAN.
	MAC netpkt.MAC
	// CapacityBps is the member port speed (e.g. 1e9 for 1 Gbps).
	CapacityBps float64

	mu    sync.Mutex // serializes rule mutations only
	rules []*Rule    // authoritative install order; copied on write
	cls   atomic.Pointer[classifier]
}

// Errors from rule management.
var (
	ErrDuplicateRule = errors.New("fabric: duplicate rule ID on port")
	ErrNoSuchRule    = errors.New("fabric: no such rule")
)

// NewPort creates a port.
func NewPort(name string, mac netpkt.MAC, capacityBps float64) *Port {
	p := &Port{Name: name, MAC: mac, CapacityBps: capacityBps}
	p.cls.Store(compile(nil))
	return p
}

// InstallRule appends a rule to the port's classification order and
// recompiles the classifier.
func (p *Port) InstallRule(r *Rule) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ex := range p.rules {
		if ex.ID == r.ID {
			return ErrDuplicateRule
		}
	}
	if r.Action == ActionShape {
		// Token bucket: burst of one second at the shaping rate.
		r.tok.Lock()
		r.burstBits = r.ShapeRateBps
		r.tokens = r.burstBits
		r.tok.Unlock()
	}
	rules := make([]*Rule, 0, len(p.rules)+1)
	rules = append(rules, p.rules...)
	rules = append(rules, r)
	p.rules = rules
	p.cls.Store(compile(rules))
	return nil
}

// RemoveRule uninstalls the rule with the given ID and recompiles the
// classifier.
func (p *Port) RemoveRule(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.rules {
		if r.ID == id {
			rules := make([]*Rule, 0, len(p.rules)-1)
			rules = append(rules, p.rules[:i]...)
			rules = append(rules, p.rules[i+1:]...)
			p.rules = rules
			p.cls.Store(compile(rules))
			return nil
		}
	}
	return ErrNoSuchRule
}

// Rule returns the installed rule with the given ID.
func (p *Port) Rule(id string) (*Rule, error) {
	for _, r := range p.cls.Load().rules {
		if r.ID == id {
			return r, nil
		}
	}
	return nil, ErrNoSuchRule
}

// Rules returns a defensive copy of the installed rules in evaluation
// order. Mutating the returned slice never affects the port; the *Rule
// pointers are shared so telemetry counters stay live.
func (p *Port) Rules() []*Rule {
	return append([]*Rule(nil), p.cls.Load().rules...)
}

// RuleCount returns the number of installed rules.
func (p *Port) RuleCount() int {
	return len(p.cls.Load().rules)
}

// Classify returns the first matching rule for the flow, or nil for the
// default forwarding queue. It is lock-free and safe to call
// concurrently with rule management and egress ticks.
func (p *Port) Classify(f netpkt.FlowKey) *Rule {
	return p.cls.Load().classifyHashed(f, 0)
}

// ClassifyHashed is Classify with the flow's precomputed
// netpkt.FlowKey.Hash (0: computed on demand).
func (p *Port) ClassifyHashed(f netpkt.FlowKey, hash uint64) *Rule {
	return p.cls.Load().classifyHashed(f, hash)
}

// EgressPacket runs one packet through classification and the queues,
// with shaping evaluated against the packet's own wire time. It is the
// per-packet functional-test path; flow-level simulations use Egress.
func (p *Port) EgressPacket(pkt *netpkt.Packet) Disposition {
	f := pkt.Flow()
	bits := float64(pkt.WireLen) * 8
	r := p.cls.Load().classifyHashed(f, 0)
	if r == nil {
		return Delivered
	}
	r.counters.MatchedPackets.Add(1)
	r.counters.MatchedBytes.Add(int64(pkt.WireLen))
	switch r.Action {
	case ActionDrop:
		r.counters.DroppedBytes.Add(int64(pkt.WireLen))
		return DroppedByRule
	case ActionShape:
		r.tok.Lock()
		ok := r.tokens >= bits
		if ok {
			r.tokens -= bits
		}
		r.tok.Unlock()
		if ok {
			r.counters.ForwardedBytes.Add(int64(pkt.WireLen))
			r.counters.ShapedResidue.Add(int64(pkt.WireLen))
			return Delivered
		}
		r.counters.DroppedBytes.Add(int64(pkt.WireLen))
		return DroppedByShaper
	default:
		r.counters.ForwardedBytes.Add(int64(pkt.WireLen))
		return Delivered
	}
}

// RefillShapers advances shaping token buckets by dt seconds; the
// per-packet path uses it between bursts. The flow-level Egress refills
// implicitly.
func (p *Port) RefillShapers(dtSeconds float64) {
	for _, r := range p.cls.Load().shapeRules {
		r.refill(dtSeconds)
	}
}

// Egress processes one tick of dtSeconds on the port: classifies every
// offer, applies drop and shaping queues, then subjects the forward
// queue to the port capacity with proportional (fair) tail drop under
// congestion — the behaviour a congested member port exhibits in
// Section 2.2's attack scenario.
//
// The classification loop runs against one immutable classifier
// snapshot: rules installed concurrently take effect the next tick, and
// no lock is held while offers are processed.
func (p *Port) Egress(offers []Offer, dtSeconds float64) TickResult {
	return p.egress(offers, dtSeconds, nil, true)
}

// EgressStream is Egress with the per-flow deliveries streamed into
// visit (which may be nil) instead of materialized as the
// TickResult.DeliveredByFlow map — the zero-allocation monitoring path
// of the scenario pipeline. The byte totals in the returned TickResult
// are identical to Egress's.
func (p *Port) EgressStream(offers []Offer, dtSeconds float64, visit FlowVisitor) TickResult {
	return p.egress(offers, dtSeconds, visit, false)
}

type fwd struct {
	flow  netpkt.FlowKey
	hash  uint64
	bytes float64
}

// fwdPool recycles the per-tick forward-queue scratch across egress
// calls, so a steady-state tick allocates no per-port buffers.
var fwdPool = sync.Pool{New: func() any { return new([]fwd) }}

func (p *Port) egress(offers []Offer, dtSeconds float64, visit FlowVisitor, collect bool) TickResult {
	cls := p.cls.Load()

	res := TickResult{}
	if collect {
		res.DeliveredByFlow = make(map[netpkt.FlowKey]float64, len(offers))
	}

	scratch := fwdPool.Get().(*[]fwd)
	forward := (*scratch)[:0]
	var forwardBytes float64

	// Refill shaping buckets for this tick.
	for _, r := range cls.shapeRules {
		r.refill(dtSeconds)
	}

	// Group shape offers per rule so concurrent flows share the rule's
	// rate limit proportionally (they share one shaping queue). The map
	// is created lazily: ports without shape matches skip it entirely.
	type shapeGroup struct {
		rule   *Rule
		offers []fwd
		total  float64
	}
	var shapeGroups map[string]*shapeGroup

	for _, o := range offers {
		r := cls.classifyHashed(o.Flow, o.FlowHash)
		if r == nil {
			forward = append(forward, fwd{o.Flow, o.FlowHash, o.Bytes})
			forwardBytes += o.Bytes
			continue
		}
		r.counters.MatchedPackets.Add(int64(o.Packets))
		r.counters.MatchedBytes.Add(int64(o.Bytes))
		switch r.Action {
		case ActionDrop:
			r.counters.DroppedBytes.Add(int64(o.Bytes))
			res.RuleDroppedBytes += o.Bytes
		case ActionShape:
			if shapeGroups == nil {
				shapeGroups = make(map[string]*shapeGroup)
			}
			g := shapeGroups[r.ID]
			if g == nil {
				g = &shapeGroup{rule: r}
				shapeGroups[r.ID] = g
			}
			g.offers = append(g.offers, fwd{o.Flow, o.FlowHash, o.Bytes})
			g.total += o.Bytes
		default: // explicit forward rule
			r.counters.ForwardedBytes.Add(int64(o.Bytes))
			forward = append(forward, fwd{o.Flow, o.FlowHash, o.Bytes})
			forwardBytes += o.Bytes
		}
	}

	// Shaping queues: pass up to the available tokens, proportionally
	// across the flows sharing the queue; the residue joins the forward
	// queue, the excess is dropped.
	groupIDs := make([]string, 0, len(shapeGroups))
	for id := range shapeGroups {
		groupIDs = append(groupIDs, id)
	}
	sort.Strings(groupIDs) // determinism
	for _, id := range groupIDs {
		g := shapeGroups[id]
		bits := g.total * 8
		passBits := g.rule.consumeTokens(bits)
		passFrac := 0.0
		if bits > 0 {
			passFrac = passBits / bits
		}
		for _, o := range g.offers {
			passed := o.bytes * passFrac
			droppedHere := o.bytes - passed
			g.rule.counters.ForwardedBytes.Add(int64(passed))
			g.rule.counters.ShapedResidue.Add(int64(passed))
			g.rule.counters.DroppedBytes.Add(int64(droppedHere))
			res.ShaperDroppedBytes += droppedHere
			if passed > 0 {
				forward = append(forward, fwd{o.flow, o.hash, passed})
				forwardBytes += passed
			}
		}
	}

	// Forward queue: bounded by port capacity for the tick; when
	// oversubscribed every flow loses the same fraction (a fluid
	// approximation of tail drop on a shared queue).
	capBytes := p.CapacityBps * dtSeconds / 8
	deliverFrac := 1.0
	if forwardBytes > capBytes && forwardBytes > 0 {
		deliverFrac = capBytes / forwardBytes
	}
	for _, f := range forward {
		delivered := f.bytes * deliverFrac
		res.DeliveredBytes += delivered
		res.CongestionDroppedBytes += f.bytes - delivered
		if collect {
			res.DeliveredByFlow[f.flow] += delivered
		}
		if visit != nil {
			visit(f.flow, f.hash, delivered)
		}
	}
	*scratch = forward
	fwdPool.Put(scratch)
	return res
}
