package fabric

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"stellar/internal/netpkt"
)

// Fabric is the IXP's switching platform: a set of member ports bridged
// on one peering LAN. Forwarding is by destination MAC, as on a real IXP
// where members resolve each other's router MACs via ARP on the LAN.
//
// The platform itself is modeled with ample core capacity (the paper's
// L-IXP carries 25 Tbps of connected capacity); the bottleneck — and the
// place where Stellar's egress QoS policies act — is the destination
// member port.
type Fabric struct {
	mu    sync.RWMutex
	ports map[netpkt.MAC]*Port
	byNam map[string]*Port
	// PlatformCapacityBps caps the sum of traffic the platform carries
	// per tick; 0 means unconstrained. It exists for the egress-vs-
	// ingress filtering ablation (small IXPs, Section 4.5).
	PlatformCapacityBps float64
}

// New returns an empty fabric.
func New() *Fabric {
	return &Fabric{ports: make(map[netpkt.MAC]*Port), byNam: make(map[string]*Port)}
}

// Errors.
var (
	ErrDuplicatePort = errors.New("fabric: duplicate port")
	ErrNoSuchPort    = errors.New("fabric: no such port")
)

// AddPort attaches a member port to the peering LAN.
func (f *Fabric) AddPort(p *Port) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.ports[p.MAC]; ok {
		return ErrDuplicatePort
	}
	if _, ok := f.byNam[p.Name]; ok {
		return ErrDuplicatePort
	}
	f.ports[p.MAC] = p
	f.byNam[p.Name] = p
	return nil
}

// PortByMAC looks a port up by MAC address.
func (f *Fabric) PortByMAC(mac netpkt.MAC) (*Port, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p, ok := f.ports[mac]
	if !ok {
		return nil, ErrNoSuchPort
	}
	return p, nil
}

// PortByName looks a port up by name.
func (f *Fabric) PortByName(name string) (*Port, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p, ok := f.byNam[name]
	if !ok {
		return nil, ErrNoSuchPort
	}
	return p, nil
}

// Ports returns all ports sorted by name.
func (f *Fabric) Ports() []*Port {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Port, 0, len(f.byNam))
	for _, p := range f.byNam {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SwitchPacket forwards one frame: it resolves the egress port from the
// destination MAC and runs the egress QoS engine. Broadcast frames (ARP)
// are delivered to every port except the sender without QoS processing.
func (f *Fabric) SwitchPacket(pkt *netpkt.Packet) (Disposition, error) {
	if pkt.Eth.Dst.IsBroadcast() {
		return Delivered, nil
	}
	egress, err := f.PortByMAC(pkt.Eth.Dst)
	if err != nil {
		return DroppedByRule, fmt.Errorf("fabric: unknown destination %s", pkt.Eth.Dst)
	}
	return egress.EgressPacket(pkt), nil
}

// TickOffers is the flow-level input to one simulation tick: offers
// grouped by destination port name.
type TickOffers map[string][]Offer

// TickStats aggregates one tick across the platform.
type TickStats struct {
	PerPort map[string]TickResult
	// PlatformOfferedBytes is the pre-filter load on the platform core.
	PlatformOfferedBytes float64
	// PlatformDroppedBytes counts bytes the core itself had to shed
	// (only when PlatformCapacityBps is set and exceeded).
	PlatformDroppedBytes float64
}

// TotalDeliveredBytes sums delivered bytes across ports.
func (t TickStats) TotalDeliveredBytes() float64 {
	var s float64
	for _, r := range t.PerPort {
		s += r.DeliveredBytes
	}
	return s
}

// TickSink supplies the per-(worker, port) FlowVisitor of a streaming
// tick: TickStream calls it once per port from the worker that egresses
// the port, and streams that port's delivered flows into the returned
// visitor (nil skips the port). Implementations must be safe to call
// from concurrent workers; worker is in [0, GOMAXPROCS), so per-worker
// state (e.g. a flowmon shard per worker) is contention-free.
type TickSink func(worker int, port string) FlowVisitor

// Tick advances the platform by dtSeconds, delivering all offers.
//
// Member ports are independent egress engines, so their ticks run
// concurrently on a worker pool sized to GOMAXPROCS and the per-port
// results are merged afterwards. The computation per port is sequential
// and the merge is keyed by port name, so results are deterministic.
func (f *Fabric) Tick(offers TickOffers, dtSeconds float64) (TickStats, error) {
	return f.TickStream(offers, dtSeconds, nil)
}

// TickStream is Tick with the monitoring pipeline attached: when sink
// is non-nil, every port's delivered flows stream into the sink's
// per-worker visitors during the tick and the per-tick
// TickResult.DeliveredByFlow maps are NOT materialized (nil in the
// results). All records of one port flow through exactly one worker in
// offer order, so downstream accumulation stays deterministic.
func (f *Fabric) TickStream(offers TickOffers, dtSeconds float64, sink TickSink) (TickStats, error) {
	return f.TickStreamOn(nil, offers, dtSeconds, sink)
}

// TickStreamOn is TickStream with the per-port fan-out submitted to the
// given runner — the engine passes its shared worker pool here so egress
// reuses the same persistent workers as the other pipeline stages. A nil
// runner falls back to the per-call goroutine fan-out.
func (f *Fabric) TickStreamOn(r Runner, offers TickOffers, dtSeconds float64, sink TickSink) (TickStats, error) {
	if r == nil {
		r = goRunner{}
	}
	stats := TickStats{PerPort: make(map[string]TickResult, len(offers))}

	var offered float64
	for _, os := range offers {
		for _, o := range os {
			offered += o.Bytes
		}
	}
	stats.PlatformOfferedBytes = offered

	// Platform core admission: proportional shed when the core is the
	// bottleneck (ingress-filtering ablation / small-IXP scenario).
	scale := 1.0
	if f.PlatformCapacityBps > 0 {
		capBytes := f.PlatformCapacityBps * dtSeconds / 8
		if offered > capBytes && offered > 0 {
			scale = capBytes / offered
			stats.PlatformDroppedBytes = offered - capBytes
		}
	}

	names := make([]string, 0, len(offers))
	for name := range offers {
		names = append(names, name)
	}
	sort.Strings(names)
	ports := make([]*Port, len(names))
	for i, name := range names {
		port, err := f.PortByName(name)
		if err != nil {
			return stats, err
		}
		ports[i] = port
	}

	results := make([]TickResult, len(names))
	r.Run(len(names), func(worker, i int) {
		os := offers[names[i]]
		if scale != 1.0 {
			scaled := make([]Offer, len(os))
			for j, o := range os {
				scaled[j] = Offer{Flow: o.Flow, Bytes: o.Bytes * scale,
					Packets: o.Packets * scale, FlowHash: o.FlowHash}
			}
			os = scaled
		}
		if sink != nil {
			results[i] = ports[i].EgressStream(os, dtSeconds, sink(worker, names[i]))
		} else {
			results[i] = ports[i].Egress(os, dtSeconds)
		}
	})
	for i, name := range names {
		stats.PerPort[name] = results[i]
	}
	return stats, nil
}

// ParallelFor runs fn(0..n-1) across a worker pool bounded by
// GOMAXPROCS; small inputs run inline to avoid goroutine overhead. It
// is the per-port fan-out of the tick pipeline, shared with ixp, and
// returns only after every call completes. fn must not panic.
func ParallelFor(n int, fn func(i int)) {
	ParallelForWorkers(n, func(_, i int) { fn(i) })
}

// ParallelForWorkers is ParallelFor with the worker index exposed:
// fn(worker, i) runs with worker in [0, GOMAXPROCS), and each i is
// handled by exactly one worker. Callers use the worker index to bind
// per-worker state — e.g. one flow-monitor shard per worker — without
// any cross-worker synchronization.
func ParallelForWorkers(n int, fn func(worker, i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
