package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunCoversAllIndices checks every index runs exactly once and
// worker identities stay within bounds.
func TestPoolRunCoversAllIndices(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 1000
	counts := make([]atomic.Int32, n)
	p.Run(n, func(worker, i int) {
		if worker < 0 || worker >= p.Workers() {
			t.Errorf("worker %d out of [0, %d)", worker, p.Workers())
		}
		counts[i].Add(1)
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

// TestPoolConcurrentRuns submits from many goroutines at once — the
// engine's pipeline does exactly this (generation and egress overlap).
func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				p.Run(17, func(_, _ int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got, want := total.Load(), int64(8*20*17); got != want {
		t.Fatalf("ran %d calls, want %d", got, want)
	}
}

// TestPoolRunAfterClose falls back to inline execution.
func TestPoolRunAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var n atomic.Int32
	p.Run(5, func(worker, _ int) {
		if worker != 0 {
			t.Errorf("inline fallback used worker %d", worker)
		}
		n.Add(1)
	})
	if n.Load() != 5 {
		t.Fatalf("ran %d of 5", n.Load())
	}
	p.Close() // idempotent
}

// TestPoolSubmit: every submitted task runs exactly once, with a valid
// worker identity, concurrently with Run submissions — the engine's
// fold scheduler mixes both on one pool.
func TestPoolSubmit(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const n = 200
	var done sync.WaitGroup
	counts := make([]atomic.Int32, n)
	var runs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent Run traffic alongside the Submits
		defer wg.Done()
		for r := 0; r < 50; r++ {
			p.Run(9, func(_, _ int) { runs.Add(1) })
		}
	}()
	for i := 0; i < n; i++ {
		i := i
		done.Add(1)
		p.Submit(func(worker int) {
			defer done.Done()
			if worker < 0 || worker >= p.Workers() {
				t.Errorf("worker %d out of [0, %d)", worker, p.Workers())
			}
			counts[i].Add(1)
		})
	}
	done.Wait()
	wg.Wait()
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
	if got, want := runs.Load(), int64(50*9); got != want {
		t.Fatalf("Run executed %d calls, want %d", got, want)
	}
}

// TestPoolSubmitAfterClose falls back to inline execution as worker 0.
func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	ran := false
	p.Submit(func(worker int) {
		if worker != 0 {
			t.Errorf("inline fallback used worker %d", worker)
		}
		ran = true
	})
	if !ran {
		t.Fatal("task did not run inline after Close")
	}
}

// TestPoolSingleWorkerInline: a one-worker pool runs inline and in order.
func TestPoolSingleWorkerInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Run(4, func(worker, i int) {
		if worker != 0 {
			t.Errorf("worker %d on single-worker pool", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("out-of-order inline run: %v", order)
		}
	}
}
