package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunCoversAllIndices checks every index runs exactly once and
// worker identities stay within bounds.
func TestPoolRunCoversAllIndices(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 1000
	counts := make([]atomic.Int32, n)
	p.Run(n, func(worker, i int) {
		if worker < 0 || worker >= p.Workers() {
			t.Errorf("worker %d out of [0, %d)", worker, p.Workers())
		}
		counts[i].Add(1)
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

// TestPoolConcurrentRuns submits from many goroutines at once — the
// engine's pipeline does exactly this (generation and egress overlap).
func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				p.Run(17, func(_, _ int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got, want := total.Load(), int64(8*20*17); got != want {
		t.Fatalf("ran %d calls, want %d", got, want)
	}
}

// TestPoolRunAfterClose falls back to inline execution.
func TestPoolRunAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var n atomic.Int32
	p.Run(5, func(worker, _ int) {
		if worker != 0 {
			t.Errorf("inline fallback used worker %d", worker)
		}
		n.Add(1)
	})
	if n.Load() != 5 {
		t.Fatalf("ran %d of 5", n.Load())
	}
	p.Close() // idempotent
}

// TestPoolSingleWorkerInline: a one-worker pool runs inline and in order.
func TestPoolSingleWorkerInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Run(4, func(worker, i int) {
		if worker != 0 {
			t.Errorf("worker %d on single-worker pool", worker)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("out-of-order inline run: %v", order)
		}
	}
}
