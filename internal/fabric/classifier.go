package fabric

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"stellar/internal/netpkt"
)

// This file implements the compiled flow classifier behind Port. The
// seed design scanned every installed rule linearly under the port mutex
// for every offered flow — the per-packet slow path Section 4.2.1 holds
// against software Flowspec processing. Instead, InstallRule/RemoveRule
// now compile the rule set into an immutable classifier published via
// atomic.Pointer, so Classify/Egress/EgressPacket run lock-free while
// rule management stays serialized on the port mutex (copy-on-write).
//
// The compiled form indexes every rule under its most selective
// criterion, exactly once:
//
//   - exact-match hash tables keyed by (proto, dst-port) and
//     (proto, src-port), with proto 0 buckets for any-proto port rules;
//   - per-field binary prefix tries for DstIP and SrcIP (v4 and v6);
//   - a SrcMAC exact-match index;
//   - a short residual list for rules too wildcarded to index
//     (MatchAll, proto-only).
//
// Lookup consults each structure the flow header can reach, re-verifies
// candidates with Match.Matches (indexes are pre-filters, never
// authorities), and keeps the candidate with the lowest install order —
// preserving the first-match-priority semantics of the linear scan.
// Candidate lists are sorted by install order so each list can stop as
// soon as its next priority cannot beat the best match found so far.
//
// On top of the compiled form, each classifier generation carries a
// flow-result memo keyed by netpkt.FlowKey.Hash: flow-level simulations
// re-offer the same flows tick after tick, so after the first tick a
// classification is one cache hit. The memo belongs to the generation,
// so a rule change can never serve a stale verdict — the new classifier
// starts with an empty memo.

// candidate is one indexed rule plus its install order (lower wins).
type candidate struct {
	rule *Rule
	pri  int
}

// protoPortKey is the exact-match key of the port tables. proto 0 holds
// rules that wildcard the protocol but pin a port.
type protoPortKey struct {
	proto netpkt.IPProto
	port  uint16
}

// trieNode is one bit of a binary prefix trie; rules whose prefix ends
// at this node are candidates for any address routed through it.
type trieNode struct {
	child [2]*trieNode
	cands []candidate
}

// prefixTrie holds one address family pair of tries for one match field.
type prefixTrie struct {
	v4, v6 *trieNode
}

func (t *prefixTrie) insert(p trieKey, bits int, c candidate) {
	root := t.v6
	if p.is4 {
		root = t.v4
	}
	n := root
	for i := 0; i < bits; i++ {
		b := (p.addr[i/8] >> (7 - i%8)) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	n.cands = append(n.cands, c)
}

// trieKey is an address in trie form: big-endian bytes plus family. For
// v4 the native 4-byte form occupies the front of addr, so prefix bit
// counts index the real address bits (the 4-in-6 mapped form would put
// 96 zero bits first and collapse every v4 prefix onto one spine).
type trieKey struct {
	addr [16]byte
	is4  bool
}

const noMatch = int(^uint(0) >> 1) // max int: "no rule yet"

// maxMemoEntries bounds the per-generation flow memo so adversarial
// flow cardinality cannot grow memory without bound.
const maxMemoEntries = 1 << 16

// memoEntry records one memoized classification. The full key is kept
// so a 64-bit hash collision degrades to a recomputation, never a wrong
// verdict.
type memoEntry struct {
	key  netpkt.FlowKey
	rule *Rule // nil: default forwarding queue
}

// classifier is an immutable compiled view of a port's rule set.
type classifier struct {
	rules      []*Rule // install order (the authoritative priority)
	shapeRules []*Rule // subset with Action == ActionShape, install order

	byProtoDstPort map[protoPortKey][]candidate
	byProtoSrcPort map[protoPortKey][]candidate
	dstTrie        prefixTrie
	srcTrie        prefixTrie
	bySrcMAC       map[netpkt.MAC][]candidate
	residual       []candidate

	memo    sync.Map // uint64 -> *memoEntry
	memoLen atomic.Int64
}

// compile builds the immutable classifier for rules (in install order).
func compile(rules []*Rule) *classifier {
	c := &classifier{
		rules:          rules,
		byProtoDstPort: make(map[protoPortKey][]candidate),
		byProtoSrcPort: make(map[protoPortKey][]candidate),
		dstTrie:        prefixTrie{v4: &trieNode{}, v6: &trieNode{}},
		srcTrie:        prefixTrie{v4: &trieNode{}, v6: &trieNode{}},
		bySrcMAC:       make(map[netpkt.MAC][]candidate),
	}
	for pri, r := range rules {
		if r.Action == ActionShape {
			c.shapeRules = append(c.shapeRules, r)
		}
		cand := candidate{rule: r, pri: pri}
		m := r.Match
		switch {
		case m.DstPort != AnyPort:
			k := protoPortKey{proto: m.Proto, port: uint16(m.DstPort)}
			c.byProtoDstPort[k] = append(c.byProtoDstPort[k], cand)
		case m.SrcPort != AnyPort:
			k := protoPortKey{proto: m.Proto, port: uint16(m.SrcPort)}
			c.byProtoSrcPort[k] = append(c.byProtoSrcPort[k], cand)
		case m.DstIP.IsValid():
			c.dstTrie.insert(trieAddr(m.DstIP.Addr()), m.DstIP.Bits(), cand)
		case m.SrcIP.IsValid():
			c.srcTrie.insert(trieAddr(m.SrcIP.Addr()), m.SrcIP.Bits(), cand)
		case m.SrcMAC != nil:
			c.bySrcMAC[*m.SrcMAC] = append(c.bySrcMAC[*m.SrcMAC], cand)
		default:
			c.residual = append(c.residual, cand)
		}
	}
	// Candidate lists are appended in install order, so they are already
	// sorted by priority; the early-exit in considerList relies on it.
	return c
}

func trieAddr(a netip.Addr) trieKey {
	if a.Is4() {
		var k trieKey
		b4 := a.As4()
		copy(k.addr[:], b4[:])
		k.is4 = true
		return k
	}
	return trieKey{addr: a.As16()}
}

// considerList scans one sorted candidate list, updating (best, bestPri)
// with the first full match that beats the current best. Because the
// list is priority-sorted it stops at the first candidate that cannot
// win.
func considerList(cands []candidate, f netpkt.FlowKey, best *Rule, bestPri int) (*Rule, int) {
	for _, cd := range cands {
		if cd.pri >= bestPri {
			return best, bestPri
		}
		if cd.rule.Match.Matches(f) {
			return cd.rule, cd.pri
		}
	}
	return best, bestPri
}

// walkTrie descends the trie along addr's bits, feeding every node's
// candidates (covering prefixes, shortest first) to considerList.
func walkTrie(t *prefixTrie, f netpkt.FlowKey, addr netip.Addr, best *Rule, bestPri int) (*Rule, int) {
	if !addr.IsValid() {
		return best, bestPri
	}
	k := trieAddr(addr)
	n := t.v6
	maxBits := 128
	if k.is4 {
		n = t.v4
		maxBits = 32
	}
	for i := 0; ; i++ {
		if len(n.cands) > 0 {
			best, bestPri = considerList(n.cands, f, best, bestPri)
		}
		if i == maxBits {
			return best, bestPri
		}
		bit := (k.addr[i/8] >> (7 - i%8)) & 1
		if n.child[bit] == nil {
			return best, bestPri
		}
		n = n.child[bit]
	}
}

// classify runs the compiled lookup: every index the flow can reach,
// first-match (lowest install order) wins. It is read-only and safe for
// unlimited concurrency.
func (c *classifier) classify(f netpkt.FlowKey) *Rule {
	var best *Rule
	bestPri := noMatch
	if len(c.byProtoDstPort) > 0 {
		best, bestPri = considerList(c.byProtoDstPort[protoPortKey{f.Proto, f.DstPort}], f, best, bestPri)
		if f.Proto != 0 {
			best, bestPri = considerList(c.byProtoDstPort[protoPortKey{0, f.DstPort}], f, best, bestPri)
		}
	}
	if len(c.byProtoSrcPort) > 0 {
		best, bestPri = considerList(c.byProtoSrcPort[protoPortKey{f.Proto, f.SrcPort}], f, best, bestPri)
		if f.Proto != 0 {
			best, bestPri = considerList(c.byProtoSrcPort[protoPortKey{0, f.SrcPort}], f, best, bestPri)
		}
	}
	best, bestPri = walkTrie(&c.dstTrie, f, f.Dst, best, bestPri)
	best, bestPri = walkTrie(&c.srcTrie, f, f.Src, best, bestPri)
	if len(c.bySrcMAC) > 0 {
		best, bestPri = considerList(c.bySrcMAC[f.SrcMAC], f, best, bestPri)
	}
	best, _ = considerList(c.residual, f, best, bestPri)
	return best
}

// classifyHashed is classify with the per-generation flow memo in
// front. hash is the flow's netpkt.FlowKey.Hash (0: compute here).
func (c *classifier) classifyHashed(f netpkt.FlowKey, hash uint64) *Rule {
	if len(c.rules) == 0 {
		// Rule-free port (the common case across a large member
		// population): nothing can match, skip the memo entirely.
		return nil
	}
	if hash == 0 {
		hash = f.Hash()
	}
	if v, ok := c.memo.Load(hash); ok {
		e := v.(*memoEntry)
		if e.key == f {
			return e.rule
		}
		// 64-bit collision between distinct live flows: fall through and
		// recompute without caching.
		return c.classify(f)
	}
	r := c.classify(f)
	if c.memoLen.Load() < maxMemoEntries {
		if _, loaded := c.memo.LoadOrStore(hash, &memoEntry{key: f, rule: r}); !loaded {
			c.memoLen.Add(1)
		}
	}
	return r
}
