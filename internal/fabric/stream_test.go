package fabric

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"stellar/internal/netpkt"
)

// streamOffers builds a mixed offer set: benign forwarded flows, flows
// hitting a drop rule and flows through a shaping rule, with enough
// volume to congest the port — every egress queue contributes.
func streamOffers(n int) []Offer {
	offers := make([]Offer, n)
	for i := range offers {
		var f netpkt.FlowKey
		switch i % 3 {
		case 0:
			f = tcpFlow(macPeerA, srcIPA, 443)
			f.SrcPort = uint16(50000 + i)
		case 1:
			f = udpFlow(macPeerA, srcIPA, 123) // drop rule target
			f.Src = srcIPB
			f.SrcPort = 123
			f.DstPort = uint16(1000 + i)
		default:
			f = udpFlow(macPeerB, srcIPB, 53) // shape rule target
			f.DstPort = uint16(2000 + i)
		}
		offers[i] = Offer{Flow: f, FlowHash: f.Hash(), Bytes: 2e6, Packets: 2000}
	}
	return offers
}

func streamRules(t *testing.T, p *Port) {
	t.Helper()
	drop := MatchAll()
	drop.Proto = netpkt.ProtoUDP
	drop.SrcPort = 123
	if err := p.InstallRule(&Rule{ID: "drop-ntp", Match: drop, Action: ActionDrop}); err != nil {
		t.Fatal(err)
	}
	shape := MatchAll()
	shape.Proto = netpkt.ProtoUDP
	shape.SrcPort = 53
	if err := p.InstallRule(&Rule{ID: "shape-dns", Match: shape, Action: ActionShape, ShapeRateBps: 1e7}); err != nil {
		t.Fatal(err)
	}
}

// TestEgressStreamMatchesEgress: the streamed per-flow deliveries must
// aggregate to exactly the DeliveredByFlow map of the materializing
// path, and the byte totals must agree.
func TestEgressStreamMatchesEgress(t *testing.T) {
	mapPort := newVictimPort()
	streamRules(t, mapPort)
	streamPort := newVictimPort()
	streamRules(t, streamPort)

	offers := streamOffers(90)
	want := mapPort.Egress(offers, 1)

	streamed := make(map[netpkt.FlowKey]float64)
	got := streamPort.EgressStream(offers, 1, func(f netpkt.FlowKey, hash uint64, bytes float64) {
		if hash != f.Hash() {
			t.Fatalf("visitor hash %d != FlowKey.Hash %d", hash, f.Hash())
		}
		streamed[f] += bytes
	})

	if got.DeliveredByFlow != nil {
		t.Fatal("EgressStream materialized DeliveredByFlow")
	}
	if got.DeliveredBytes != want.DeliveredBytes ||
		got.RuleDroppedBytes != want.RuleDroppedBytes ||
		got.ShaperDroppedBytes != want.ShaperDroppedBytes ||
		got.CongestionDroppedBytes != want.CongestionDroppedBytes {
		t.Fatalf("totals diverge: stream %+v, map %+v", got, want)
	}
	if len(streamed) != len(want.DeliveredByFlow) {
		t.Fatalf("streamed %d flows, map has %d", len(streamed), len(want.DeliveredByFlow))
	}
	for f, b := range want.DeliveredByFlow {
		if g := streamed[f]; math.Abs(g-b) > 1e-9 {
			t.Fatalf("flow %v: streamed %v, map %v", f, g, b)
		}
	}
}

// TestEgressStreamNilVisitor: a nil visitor just skips monitoring; the
// totals still come out and no map is built.
func TestEgressStreamNilVisitor(t *testing.T) {
	p := newVictimPort()
	offers := streamOffers(30)
	res := p.EgressStream(offers, 1, nil)
	if res.DeliveredByFlow != nil {
		t.Fatal("nil-visitor stream materialized DeliveredByFlow")
	}
	if res.DeliveredBytes <= 0 {
		t.Fatalf("no delivery: %+v", res)
	}
}

// TestTickStreamPerPortVisitors: each port's flows reach exactly its
// own visitor, worker ids stay in range, and per-port streamed bytes
// equal the port's DeliveredBytes.
func TestTickStreamPerPortVisitors(t *testing.T) {
	const ports = 16
	f := New()
	offers := make(TickOffers, ports)
	for p := 0; p < ports; p++ {
		name := fmt.Sprintf("AS%d", 64512+p)
		mac := netpkt.MAC{0x02, 0x20, 0, 0, 0, byte(p)}
		if err := f.AddPort(NewPort(name, mac, 1e9)); err != nil {
			t.Fatal(err)
		}
		os := make([]Offer, 8)
		for i := range os {
			flow := tcpFlow(macPeerA, srcIPA, uint16(8000+i))
			flow.SrcMAC = netpkt.MAC{0x02, 0x30, 0, 0, byte(p), byte(i)}
			os[i] = Offer{Flow: flow, FlowHash: flow.Hash(), Bytes: 1e4, Packets: 10}
		}
		offers[name] = os
	}

	maxWorkers := runtime.GOMAXPROCS(0)
	var mu sync.Mutex
	perPort := make(map[string]float64)
	sink := func(worker int, port string) FlowVisitor {
		if worker < 0 || worker >= maxWorkers {
			t.Errorf("worker %d out of range [0,%d)", worker, maxWorkers)
		}
		return func(flow netpkt.FlowKey, _ uint64, bytes float64) {
			mu.Lock()
			perPort[port] += bytes
			mu.Unlock()
		}
	}
	stats, err := f.TickStream(offers, 1, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(perPort) != ports {
		t.Fatalf("visitors saw %d ports, want %d", len(perPort), ports)
	}
	for name, res := range stats.PerPort {
		if res.DeliveredByFlow != nil {
			t.Fatalf("port %s: TickStream materialized DeliveredByFlow", name)
		}
		if math.Abs(perPort[name]-res.DeliveredBytes) > 1e-9 {
			t.Fatalf("port %s: streamed %v, delivered %v", name, perPort[name], res.DeliveredBytes)
		}
	}
}

// TestTickStreamNilSinkKeepsMaps: Tick (nil sink) must keep the legacy
// materialized maps for existing consumers.
func TestTickStreamNilSinkKeepsMaps(t *testing.T) {
	f := New()
	p := newVictimPort()
	if err := f.AddPort(p); err != nil {
		t.Fatal(err)
	}
	stats, err := f.Tick(TickOffers{"victim": streamOffers(6)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerPort["victim"].DeliveredByFlow == nil {
		t.Fatal("Tick dropped DeliveredByFlow")
	}
}
