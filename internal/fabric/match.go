// Package fabric emulates the IXP's layer-2 switching platform and its
// egress QoS policy engine (Section 4.5, Figure 8): per-member ports,
// MAC-based forwarding, and per-port classification of traffic into
// forward, shape and drop queues with token-bucket shaping and per-rule
// telemetry counters.
//
// The simulator is flow-level and discrete-time: traffic is offered to
// ports as (flow header, bytes, packets) aggregates per tick, which is
// what lets experiments replay multi-gigabit attacks faithfully without
// materializing packets. A per-packet path (Classify + EgressPacket) is
// provided for functional tests.
//
// Classification is line-rate in spirit: rule installs compile the
// port's rule set into an immutable lookup structure (exact-match port
// tables, per-field prefix tries, a source-MAC index and a short
// residual list — see classifier.go) published through an atomic
// pointer, so the data path runs lock-free with first-match-priority
// semantics while rule management stays serialized. Fabric.Tick runs
// all member ports' egress engines concurrently on a worker pool;
// results are merged per port and remain deterministic.
package fabric

import (
	"fmt"
	"net/netip"
	"strings"

	"stellar/internal/netpkt"
)

// AnyPort is the wildcard value for Match port fields. Port 0 is a real,
// attack-relevant port (the top source port in blackholed traffic,
// Figure 3a), so the wildcard must be out of band.
const AnyPort int32 = -1

// Match is an L2-L4 classification pattern, the match half of a
// blackholing rule. Zero values mean "any" except for the port fields,
// which use AnyPort (-1).
type Match struct {
	// SrcMAC, when non-nil, matches frames from one member router —
	// the L2 criterion used for RTBH policy control.
	SrcMAC *netpkt.MAC
	// Proto matches the transport protocol; 0 means any.
	Proto netpkt.IPProto
	// SrcIP / DstIP match when the packet address is inside the prefix;
	// an invalid (zero) prefix means any.
	SrcIP netip.Prefix
	DstIP netip.Prefix
	// SrcPort / DstPort match transport ports; AnyPort means any.
	SrcPort int32
	DstPort int32
}

// MatchAll returns a match with every field wildcarded.
func MatchAll() Match { return Match{SrcPort: AnyPort, DstPort: AnyPort} }

// Matches reports whether the flow header satisfies the pattern.
func (m Match) Matches(f netpkt.FlowKey) bool {
	if m.SrcMAC != nil && f.SrcMAC != *m.SrcMAC {
		return false
	}
	if m.Proto != 0 && f.Proto != m.Proto {
		return false
	}
	if m.SrcIP.IsValid() && !(f.Src.IsValid() && m.SrcIP.Contains(f.Src)) {
		return false
	}
	if m.DstIP.IsValid() && !(f.Dst.IsValid() && m.DstIP.Contains(f.Dst)) {
		return false
	}
	if m.SrcPort != AnyPort && int32(f.SrcPort) != m.SrcPort {
		return false
	}
	if m.DstPort != AnyPort && int32(f.DstPort) != m.DstPort {
		return false
	}
	return true
}

// CriteriaCount returns the number of TCAM criteria the pattern consumes,
// split into MAC (L2) and L3-L4 criteria — the two budget dimensions of
// the hardware model and Figure 9.
func (m Match) CriteriaCount() (mac, l34 int) {
	if m.SrcMAC != nil {
		mac++
	}
	if m.Proto != 0 {
		l34++
	}
	if m.SrcIP.IsValid() {
		l34++
	}
	if m.DstIP.IsValid() {
		l34++
	}
	if m.SrcPort != AnyPort {
		l34++
	}
	if m.DstPort != AnyPort {
		l34++
	}
	return mac, l34
}

func (m Match) String() string {
	var parts []string
	if m.SrcMAC != nil {
		parts = append(parts, "src-mac="+m.SrcMAC.String())
	}
	if m.Proto != 0 {
		parts = append(parts, "proto="+m.Proto.String())
	}
	if m.SrcIP.IsValid() {
		parts = append(parts, "src="+m.SrcIP.String())
	}
	if m.DstIP.IsValid() {
		parts = append(parts, "dst="+m.DstIP.String())
	}
	if m.SrcPort != AnyPort {
		parts = append(parts, fmt.Sprintf("src-port=%d", m.SrcPort))
	}
	if m.DstPort != AnyPort {
		parts = append(parts, fmt.Sprintf("dst-port=%d", m.DstPort))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}
