package fabric_test

import (
	"fmt"
	"net/netip"

	"stellar/internal/fabric"
	"stellar/internal/netpkt"
)

// ExamplePort_InstallRule installs an Advanced Blackholing drop rule —
// "discard NTP reflection aimed at the victim /32" — and shows the
// port compiling it into its classifier.
func ExamplePort_InstallRule() {
	port := fabric.NewPort("AS64512", netpkt.MustParseMAC("02:00:00:00:00:01"), 1e9)

	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123 // NTP
	m.DstIP = netip.MustParsePrefix("100.10.10.10/32")
	rule := &fabric.Rule{ID: "drop-ntp", Match: m, Action: fabric.ActionDrop}

	if err := port.InstallRule(rule); err != nil {
		fmt.Println("install failed:", err)
		return
	}
	fmt.Println(rule)
	fmt.Println("installed rules:", port.RuleCount())
	// Output:
	// rule drop-ntp: match(proto=UDP,dst=100.10.10.10/32,src-port=123) -> drop
	// installed rules: 1
}

// ExamplePort_Classify classifies two flows against an installed rule
// set: the attack flow hits the drop rule, benign web traffic falls
// through to the default forwarding queue (nil).
func ExamplePort_Classify() {
	port := fabric.NewPort("AS64512", netpkt.MustParseMAC("02:00:00:00:00:01"), 1e9)
	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	if err := port.InstallRule(&fabric.Rule{ID: "drop-ntp", Match: m, Action: fabric.ActionDrop}); err != nil {
		fmt.Println("install failed:", err)
		return
	}

	attack := netpkt.FlowKey{
		SrcMAC: netpkt.MustParseMAC("02:00:00:00:00:02"),
		Src:    netip.MustParseAddr("198.51.100.1"),
		Dst:    netip.MustParseAddr("100.10.10.10"),
		Proto:  netpkt.ProtoUDP, SrcPort: 123, DstPort: 443,
	}
	web := attack
	web.Proto = netpkt.ProtoTCP
	web.SrcPort = 50000

	if r := port.Classify(attack); r != nil {
		fmt.Println("attack flow ->", r.ID)
	}
	if r := port.Classify(web); r == nil {
		fmt.Println("web flow -> default forwarding queue")
	}
	// Output:
	// attack flow -> drop-ntp
	// web flow -> default forwarding queue
}

// ExamplePort_Egress runs one flow-level egress tick: a 2 Gbps NTP
// flood and a 400 Mbps web service offered to a 1 Gbps member port
// with the attack signature dropped — benign traffic survives intact.
func ExamplePort_Egress() {
	port := fabric.NewPort("AS64512", netpkt.MustParseMAC("02:00:00:00:00:01"), 1e9)
	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	if err := port.InstallRule(&fabric.Rule{ID: "drop-ntp", Match: m, Action: fabric.ActionDrop}); err != nil {
		fmt.Println("install failed:", err)
		return
	}

	peer := netpkt.MustParseMAC("02:00:00:00:00:02")
	victim := netip.MustParseAddr("100.10.10.10")
	attack := netpkt.FlowKey{SrcMAC: peer, Src: netip.MustParseAddr("198.51.100.1"),
		Dst: victim, Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443}
	web := netpkt.FlowKey{SrcMAC: peer, Src: netip.MustParseAddr("198.51.100.2"),
		Dst: victim, Proto: netpkt.ProtoTCP, SrcPort: 50443, DstPort: 443}

	res := port.Egress([]fabric.Offer{
		{Flow: attack, FlowHash: attack.Hash(), Bytes: 250e6, Packets: 5e5}, // 2 Gbit in 1 s
		{Flow: web, FlowHash: web.Hash(), Bytes: 50e6, Packets: 5e4},        // 400 Mbit in 1 s
	}, 1.0)

	fmt.Printf("delivered:    %.0f Mbit\n", res.DeliveredBytes*8/1e6)
	fmt.Printf("rule-dropped: %.0f Mbit\n", res.RuleDroppedBytes*8/1e6)
	fmt.Printf("congestion:   %.0f Mbit\n", res.CongestionDroppedBytes*8/1e6)
	// Output:
	// delivered:    400 Mbit
	// rule-dropped: 2000 Mbit
	// congestion:   0 Mbit
}
