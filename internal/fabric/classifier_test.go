package fabric

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"stellar/internal/netpkt"
)

// linearClassify is the reference implementation: the seed's first-match
// linear scan over the install order.
func linearClassify(rules []*Rule, f netpkt.FlowKey) *Rule {
	for _, r := range rules {
		if r.Match.Matches(f) {
			return r
		}
	}
	return nil
}

// randomMatch draws a match pattern touching a small value space so
// rules overlap and every index of the compiled classifier is
// exercised.
func randomMatch(rng *rand.Rand, macs []netpkt.MAC) Match {
	m := MatchAll()
	if rng.Intn(10) < 3 {
		mac := macs[rng.Intn(len(macs))]
		m.SrcMAC = &mac
	}
	if rng.Intn(10) < 6 {
		m.Proto = []netpkt.IPProto{netpkt.ProtoUDP, netpkt.ProtoTCP, netpkt.ProtoICMP}[rng.Intn(3)]
	}
	if rng.Intn(10) < 3 {
		m.SrcIP = netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 51, 100, byte(rng.Intn(4) * 64)}), 24+rng.Intn(9))
	}
	if rng.Intn(10) < 3 {
		m.DstIP = netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(rng.Intn(3)), 0}), 8+rng.Intn(25))
	}
	if rng.Intn(10) < 4 {
		m.SrcPort = int32([]uint16{0, 19, 53, 123, 389, 11211}[rng.Intn(6)])
	}
	if rng.Intn(10) < 4 {
		m.DstPort = int32([]uint16{80, 443, 8080}[rng.Intn(3)])
	}
	return m
}

func randomFlow(rng *rand.Rand, macs []netpkt.MAC) netpkt.FlowKey {
	return netpkt.FlowKey{
		SrcMAC:  macs[rng.Intn(len(macs))],
		Src:     netip.AddrFrom4([4]byte{198, 51, 100, byte(rng.Intn(256))}),
		Dst:     netip.AddrFrom4([4]byte{100, 10, byte(rng.Intn(3)), byte(rng.Intn(256))}),
		Proto:   []netpkt.IPProto{netpkt.ProtoUDP, netpkt.ProtoTCP, netpkt.ProtoICMP}[rng.Intn(3)],
		SrcPort: []uint16{0, 19, 53, 123, 389, 11211, 40000}[rng.Intn(7)],
		DstPort: []uint16{80, 443, 8080, 22}[rng.Intn(4)],
	}
}

// TestClassifierMatchesLinearScan cross-validates the compiled
// classifier against the linear reference over randomized overlapping
// rule sets, with and without pre-hashed lookups.
func TestClassifierMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	macs := make([]netpkt.MAC, 6)
	for i := range macs {
		macs[i] = netpkt.MustParseMAC(fmt.Sprintf("02:00:00:00:00:%02x", i+1))
	}
	for trial := 0; trial < 50; trial++ {
		p := NewPort("victim", macs[0], 1e9)
		n := 1 + rng.Intn(64)
		for i := 0; i < n; i++ {
			r := &Rule{ID: fmt.Sprintf("r%d", i), Match: randomMatch(rng, macs),
				Action: ActionKind(rng.Intn(3))}
			if r.Action == ActionShape {
				r.ShapeRateBps = 1e6
			}
			if err := p.InstallRule(r); err != nil {
				t.Fatal(err)
			}
		}
		rules := p.Rules()
		for q := 0; q < 200; q++ {
			f := randomFlow(rng, macs)
			want := linearClassify(rules, f)
			if got := p.Classify(f); got != want {
				t.Fatalf("trial %d: Classify(%v) = %v, want %v (rules: %v)", trial, f, got, want, rules)
			}
			if got := p.ClassifyHashed(f, f.Hash()); got != want {
				t.Fatalf("trial %d: ClassifyHashed(%v) = %v, want %v", trial, f, got, want)
			}
			// Memoized second lookup must agree.
			if got := p.Classify(f); got != want {
				t.Fatalf("trial %d: memoized Classify(%v) = %v, want %v", trial, f, got, want)
			}
		}
	}
}

// TestClassifierFirstMatchAcrossIndexes pins the priority semantics when
// the competing rules live in different compiled indexes.
func TestClassifierFirstMatchAcrossIndexes(t *testing.T) {
	p := newVictimPort()
	// Install order: dst-port rule, then src-port rule, then dst-prefix
	// rule, then MAC rule, then a wildcard. All match the probe flow; the
	// first installed must win, then each removal promotes the next.
	mDst := MatchAll()
	mDst.Proto = netpkt.ProtoUDP
	mDst.DstPort = 443
	mSrc := MatchAll()
	mSrc.SrcPort = 123 // any proto, pinned src port
	mPfx := MatchAll()
	mPfx.DstIP = netip.MustParsePrefix("100.10.0.0/16")
	mMAC := MatchAll()
	mMAC.SrcMAC = &macPeerA
	order := []struct {
		id string
		m  Match
	}{
		{"by-dstport", mDst},
		{"by-srcport", mSrc},
		{"by-dstpfx", mPfx},
		{"by-mac", mMAC},
		{"wildcard", MatchAll()},
	}
	for _, r := range order {
		if err := p.InstallRule(&Rule{ID: r.id, Match: r.m, Action: ActionDrop}); err != nil {
			t.Fatal(err)
		}
	}
	f := udpFlow(macPeerA, srcIPA, 123) // matches every rule above
	for _, want := range order {
		got := p.Classify(f)
		if got == nil || got.ID != want.id {
			t.Fatalf("want %s, got %v", want.id, got)
		}
		if err := p.RemoveRule(want.id); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Classify(f); got != nil {
		t.Fatalf("empty port classified %v", got)
	}
}

// TestClassifierAnyProtoPortRule covers the proto-wildcard port bucket.
func TestClassifierAnyProtoPortRule(t *testing.T) {
	p := newVictimPort()
	m := MatchAll()
	m.DstPort = 443 // any proto
	if err := p.InstallRule(&Rule{ID: "dst443", Match: m, Action: ActionDrop}); err != nil {
		t.Fatal(err)
	}
	if r := p.Classify(udpFlow(macPeerA, srcIPA, 123)); r == nil {
		t.Fatal("udp dst 443 missed")
	}
	if r := p.Classify(tcpFlow(macPeerB, srcIPB, 443)); r == nil {
		t.Fatal("tcp dst 443 missed")
	}
	if r := p.Classify(tcpFlow(macPeerB, srcIPB, 80)); r != nil {
		t.Fatalf("dst 80 matched %v", r)
	}
}

// TestClassifierIPv6Prefixes exercises the v6 side of the prefix tries.
func TestClassifierIPv6Prefixes(t *testing.T) {
	p := newVictimPort()
	m := MatchAll()
	m.DstIP = netip.MustParsePrefix("2001:db8::/32")
	if err := p.InstallRule(&Rule{ID: "v6", Match: m, Action: ActionDrop}); err != nil {
		t.Fatal(err)
	}
	in := netpkt.FlowKey{Src: netip.MustParseAddr("2001:db8:ff::1"),
		Dst: netip.MustParseAddr("2001:db8::10"), Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443}
	out := in
	out.Dst = netip.MustParseAddr("2001:db9::10")
	if r := p.Classify(in); r == nil {
		t.Fatal("v6 dst inside prefix missed")
	}
	if r := p.Classify(out); r != nil {
		t.Fatalf("v6 dst outside prefix matched %v", r)
	}
	// A v4 flow must not be swallowed by the v6 trie.
	if r := p.Classify(udpFlow(macPeerA, srcIPA, 123)); r != nil {
		t.Fatalf("v4 flow matched v6 rule: %v", r)
	}
}

// TestClassifierV4TrieDiscriminates is the structural regression test
// for the v4 prefix trie: distinct v4 /32 rules must land on distinct
// trie nodes (indexed by real v4 address bits), not collapse onto one
// spine node, which would degrade dst-prefix blackholing back to a
// linear scan.
func TestClassifierV4TrieDiscriminates(t *testing.T) {
	const n = 256
	rules := make([]*Rule, n)
	for i := range rules {
		m := MatchAll()
		m.DstIP = netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 10, byte(i / 256), byte(i)}), 32)
		rules[i] = &Rule{ID: fmt.Sprintf("d%03d", i), Match: m, Action: ActionDrop}
	}
	c := compile(rules)
	var maxLoad int
	var walk func(nd *trieNode)
	walk = func(nd *trieNode) {
		if len(nd.cands) > maxLoad {
			maxLoad = len(nd.cands)
		}
		for _, ch := range nd.child {
			if ch != nil {
				walk(ch)
			}
		}
	}
	walk(c.dstTrie.v4)
	if maxLoad != 1 {
		t.Fatalf("a v4 trie node holds %d candidates; /32 rules must not share nodes", maxLoad)
	}
	// And the walk still finds the right rule.
	f := netpkt.FlowKey{Src: srcIPA, Dst: netip.AddrFrom4([4]byte{100, 10, 0, 77}),
		Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443}
	if got := c.classify(f); got == nil || got.ID != "d077" {
		t.Fatalf("classify: %v", got)
	}
}

// TestRulesDefensiveCopy pins the contract that mutating the slice
// returned by Rules cannot corrupt the port's rule order.
func TestRulesDefensiveCopy(t *testing.T) {
	p := newVictimPort()
	if err := p.InstallRule(dropNTPRule()); err != nil {
		t.Fatal(err)
	}
	m := MatchAll()
	m.Proto = netpkt.ProtoUDP
	if err := p.InstallRule(&Rule{ID: "drop-udp", Match: m, Action: ActionDrop}); err != nil {
		t.Fatal(err)
	}
	got := p.Rules()
	got[0], got[1] = got[1], got[0]
	got[0] = nil
	again := p.Rules()
	if len(again) != 2 || again[0].ID != "drop-ntp" || again[1].ID != "drop-udp" {
		t.Fatalf("port rules corrupted by caller mutation: %v", again)
	}
	if p.Classify(udpFlow(macPeerA, srcIPA, 123)).ID != "drop-ntp" {
		t.Fatal("classification order changed")
	}
}

// TestConcurrentRuleChurnAndClassify is the -race stress test: rule
// management, classification, flow-level egress and per-packet egress
// all run concurrently against one port.
func TestConcurrentRuleChurnAndClassify(t *testing.T) {
	p := newVictimPort()
	m := MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	if err := p.InstallRule(&Rule{ID: "pinned-shape", Match: m, Action: ActionShape, ShapeRateBps: 1e8}); err != nil {
		t.Fatal(err)
	}

	const iters = 300
	var wg sync.WaitGroup
	// Writers: churn per-worker rule IDs.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("w%d-%d", w, i%8)
				mm := MatchAll()
				mm.Proto = netpkt.ProtoUDP
				mm.SrcPort = int32(1000 + w*100 + i%8)
				if err := p.InstallRule(&Rule{ID: id, Match: mm, Action: ActionDrop}); err != nil && err != ErrDuplicateRule {
					t.Error(err)
					return
				}
				if i%2 == 1 {
					if err := p.RemoveRule(id); err != nil && err != ErrNoSuchRule {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Readers: classify, flow egress, packet egress, rule listing.
	offers := []Offer{
		{Flow: udpFlow(macPeerA, srcIPA, 123), Bytes: 1e6, Packets: 1000},
		{Flow: udpFlow(macPeerA, srcIPA, 1001), Bytes: 1e5, Packets: 100},
		{Flow: tcpFlow(macPeerB, srcIPB, 443), Bytes: 5e5, Packets: 500},
	}
	pkt := netpkt.NewBuilder(macPeerA, macVictim).IPv4(srcIPA, victimIP).UDP(123, 443).PayloadLen(400).Build()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p.Egress(offers, 0.01)
				p.Classify(offers[i%len(offers)].Flow)
				p.EgressPacket(pkt)
				if rs := p.Rules(); len(rs) == 0 {
					t.Error("pinned rule disappeared")
					return
				}
				p.RefillShapers(0.01)
				p.RuleCount()
			}
		}()
	}
	wg.Wait()
	if _, err := p.Rule("pinned-shape"); err != nil {
		t.Fatalf("pinned rule lost: %v", err)
	}
}

// TestConcurrentFabricTicks races whole-fabric ticks against rule churn
// across many ports (the parallel egress pool under -race).
func TestConcurrentFabricTicks(t *testing.T) {
	f := New()
	const ports = 8
	macs := make([]netpkt.MAC, ports)
	offers := make(TickOffers, ports)
	for i := 0; i < ports; i++ {
		macs[i] = netpkt.MustParseMAC(fmt.Sprintf("02:00:00:00:01:%02x", i))
		name := fmt.Sprintf("port%d", i)
		if err := f.AddPort(NewPort(name, macs[i], 1e9)); err != nil {
			t.Fatal(err)
		}
		offers[name] = []Offer{
			{Flow: udpFlow(macs[i], srcIPA, 123), Bytes: 2e5, Packets: 200},
			{Flow: tcpFlow(macs[i], srcIPB, 443), Bytes: 1e5, Packets: 100},
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := f.Tick(offers, 0.01); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		m := MatchAll()
		m.Proto = netpkt.ProtoUDP
		m.SrcPort = 123
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("port%d", i%ports)
			port, err := f.PortByName(name)
			if err != nil {
				t.Error(err)
				return
			}
			_ = port.InstallRule(&Rule{ID: "churn", Match: m, Action: ActionDrop})
			_ = port.RemoveRule("churn")
		}
	}()
	wg.Wait()
}
