package fabric

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner fans indexed work across workers: Run(n, fn) calls fn(worker, i)
// exactly once for every i in [0, n), with worker identifying the
// executing worker in [0, Workers()), and returns only after every call
// completed. Implementations must allow concurrent Run calls — the
// engine's pipeline submits traffic generation and fabric egress from
// different stages at the same time.
type Runner interface {
	// Run executes fn(worker, i) for every i in [0, n).
	Run(n int, fn func(worker, i int))
	// Workers returns the worker-index bound: every worker value passed
	// to fn is below it.
	Workers() int
}

// goRunner is the pool-less default: it spawns the per-call goroutines
// ParallelForWorkers always used.
type goRunner struct{}

func (goRunner) Run(n int, fn func(worker, i int)) { ParallelForWorkers(n, fn) }
func (goRunner) Workers() int                      { return runtime.GOMAXPROCS(0) }

// DefaultRunner returns the per-call goroutine fan-out used when no
// shared pool is supplied.
func DefaultRunner() Runner { return goRunner{} }

// poolJob is one Run submission: workers pull indices from next until n
// is exhausted.
type poolJob struct {
	n    int
	fn   func(worker, i int)
	next atomic.Int64
	wg   sync.WaitGroup
}

// Pool is a shared worker pool: a fixed set of persistent goroutines
// that execute Run submissions from any number of concurrent callers.
// The simulation engine keeps one pool per run so per-tick stage
// fan-outs (traffic generation across victims, egress across member
// ports) reuse warm goroutines instead of spawning fresh ones every
// tick, and so the whole pipeline is bounded by one worker budget.
//
// Each persistent worker has a fixed identity in [0, Workers()); the
// worker index fn receives is that identity, so per-worker state bound
// to it (e.g. one flowmon shard per worker) is touched by exactly one
// goroutine.
type Pool struct {
	jobs    chan *poolJob
	done    chan struct{}
	workers int
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// NewPool starts a pool of n persistent workers (n < 1 means
// GOMAXPROCS). Close releases them.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan *poolJob, n), done: make(chan struct{}), workers: n}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go func(worker int) {
			defer p.wg.Done()
			for {
				select {
				case job := <-p.jobs:
					job.run(worker)
				case <-p.done:
					// Drain handoffs that landed before Close so no Run
					// caller is left waiting on abandoned indices.
					for {
						select {
						case job := <-p.jobs:
							job.run(worker)
						default:
							return
						}
					}
				}
			}
		}(w)
	}
	return p
}

// run drains indices until the job is exhausted.
func (j *poolJob) run(worker int) {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(worker, i)
		j.wg.Done()
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(worker, i) for every i in [0, n) on the pool and
// returns when all calls completed. Small submissions run inline on the
// caller (worker 0) to avoid scheduling overhead. Safe for concurrent
// use; fn must not call Run on the same pool (a worker executing fn
// would then wait for capacity it occupies).
func (p *Pool) Run(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p.workers == 1 || p.closed.Load() {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	job := &poolJob{n: n, fn: fn}
	job.wg.Add(n)
	// Hand the job to as many workers as can help; each handoff is one
	// channel send, and workers pull indices from the shared counter so
	// an uneven split self-balances.
	handoffs := p.workers
	if handoffs > n {
		handoffs = n
	}
	// Sends block only when every worker is busy with concurrent Run
	// submissions; they drain as soon as any worker frees up, and a
	// handoff landing after the job is exhausted costs one atomic load.
	// p.jobs is never closed (workers exit via p.done), so a Close
	// racing this loop cannot turn a handoff into a send-on-closed
	// panic — the select falls through to the caller-drain below.
	for i := 0; i < handoffs; i++ {
		select {
		case p.jobs <- job:
		case <-p.done:
			i = handoffs // stop handing off; workers are exiting
		}
	}
	// If Close raced the handoffs, exiting workers may never pick the
	// job up: the caller drains the shared counter itself so wg.Wait
	// cannot hang. (During this shutdown window the caller runs as
	// worker 0, so per-worker state may briefly see two goroutines on
	// id 0 — acceptable for a pool being torn down.)
	if p.closed.Load() {
		job.run(0)
	}
	job.wg.Wait()
}

// Submit hands one task to the pool without waiting for it: fn(worker)
// runs on whichever worker picks it up. It is the asynchronous
// counterpart of Run — the engine's fold scheduler uses it to keep
// per-victim monitor lanes moving without parking a goroutine per lane.
// Safe for concurrent use with Run and other Submits; fn must not call
// Run or Submit on the same pool. After Close (or with a single
// worker), fn executes inline on the caller as worker 0.
func (p *Pool) Submit(fn func(worker int)) {
	if p.workers == 1 || p.closed.Load() {
		fn(0)
		return
	}
	job := &poolJob{n: 1, fn: func(worker, _ int) { fn(worker) }}
	job.wg.Add(1)
	select {
	case p.jobs <- job:
	case <-p.done:
	}
	// If Close raced the handoff, exiting workers may never pick the job
	// up; the shared index counter makes running it here a no-op when a
	// worker already claimed it.
	if p.closed.Load() {
		job.run(0)
	}
}

// Close releases the workers. Run calls after Close execute inline.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.done)
		p.wg.Wait()
	}
}
