package fabric

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"stellar/internal/netpkt"
)

var (
	macVictim = netpkt.MustParseMAC("02:00:00:00:00:01")
	macPeerA  = netpkt.MustParseMAC("02:00:00:00:00:02")
	macPeerB  = netpkt.MustParseMAC("02:00:00:00:00:03")
	victimIP  = netip.MustParseAddr("100.10.10.10")
	srcIPA    = netip.MustParseAddr("198.51.100.1")
	srcIPB    = netip.MustParseAddr("198.51.100.2")
)

func udpFlow(srcMAC netpkt.MAC, src netip.Addr, srcPort uint16) netpkt.FlowKey {
	return netpkt.FlowKey{SrcMAC: srcMAC, Src: src, Dst: victimIP,
		Proto: netpkt.ProtoUDP, SrcPort: srcPort, DstPort: 443}
}

func tcpFlow(srcMAC netpkt.MAC, src netip.Addr, dstPort uint16) netpkt.FlowKey {
	return netpkt.FlowKey{SrcMAC: srcMAC, Src: src, Dst: victimIP,
		Proto: netpkt.ProtoTCP, SrcPort: 50000, DstPort: dstPort}
}

func TestMatchWildcards(t *testing.T) {
	f := udpFlow(macPeerA, srcIPA, 123)
	if !MatchAll().Matches(f) {
		t.Fatal("MatchAll must match everything")
	}
	m := MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	if !m.Matches(f) {
		t.Fatal("udp/123 must match")
	}
	m.SrcPort = 53
	if m.Matches(f) {
		t.Fatal("port 53 must not match 123")
	}
	m = MatchAll()
	m.DstIP = netip.MustParsePrefix("100.10.10.10/32")
	if !m.Matches(f) {
		t.Fatal("dst /32 must match")
	}
	m.DstIP = netip.MustParsePrefix("100.10.10.0/31")
	if m.Matches(f) {
		t.Fatal("non-covering dst must not match")
	}
	m = MatchAll()
	m.SrcMAC = &macPeerB
	if m.Matches(f) {
		t.Fatal("wrong MAC must not match")
	}
}

func TestMatchPortZeroIsReal(t *testing.T) {
	// UDP source port 0 is the top blackholed port (Fig 3a); the wildcard
	// must not swallow it.
	m := MatchAll()
	m.SrcPort = 0
	if m.Matches(udpFlow(macPeerA, srcIPA, 123)) {
		t.Fatal("port-0 match matched port 123")
	}
	if !m.Matches(udpFlow(macPeerA, srcIPA, 0)) {
		t.Fatal("port-0 match missed port 0")
	}
}

func TestCriteriaCount(t *testing.T) {
	m := MatchAll()
	if mac, l34 := m.CriteriaCount(); mac != 0 || l34 != 0 {
		t.Fatalf("MatchAll criteria: %d %d", mac, l34)
	}
	m.SrcMAC = &macPeerA
	m.Proto = netpkt.ProtoUDP
	m.DstIP = netip.MustParsePrefix("100.10.10.10/32")
	m.SrcPort = 123
	if mac, l34 := m.CriteriaCount(); mac != 1 || l34 != 3 {
		t.Fatalf("criteria: mac=%d l34=%d, want 1, 3", mac, l34)
	}
}

func TestMatchString(t *testing.T) {
	if MatchAll().String() != "any" {
		t.Fatal("MatchAll string")
	}
	m := MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	if m.String() == "" || m.String() == "any" {
		t.Fatalf("String: %q", m.String())
	}
}

func newVictimPort() *Port {
	return NewPort("victim", macVictim, 1e9) // 1 Gbps member port
}

func dropNTPRule() *Rule {
	m := MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	m.DstIP = netip.MustParsePrefix("100.10.10.10/32")
	return &Rule{ID: "drop-ntp", Match: m, Action: ActionDrop}
}

func TestRuleManagement(t *testing.T) {
	p := newVictimPort()
	r := dropNTPRule()
	if err := p.InstallRule(r); err != nil {
		t.Fatal(err)
	}
	if err := p.InstallRule(dropNTPRule()); err != ErrDuplicateRule {
		t.Fatalf("duplicate: %v", err)
	}
	if got, err := p.Rule("drop-ntp"); err != nil || got != r {
		t.Fatalf("Rule: %v %v", got, err)
	}
	if p.RuleCount() != 1 {
		t.Fatal("RuleCount")
	}
	if err := p.RemoveRule("drop-ntp"); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveRule("drop-ntp"); err != ErrNoSuchRule {
		t.Fatalf("remove twice: %v", err)
	}
	if _, err := p.Rule("nope"); err != ErrNoSuchRule {
		t.Fatalf("missing rule: %v", err)
	}
}

func TestEgressDropQueue(t *testing.T) {
	p := newVictimPort()
	if err := p.InstallRule(dropNTPRule()); err != nil {
		t.Fatal(err)
	}
	offers := []Offer{
		{Flow: udpFlow(macPeerA, srcIPA, 123), Bytes: 1e6, Packets: 1000}, // NTP attack
		{Flow: tcpFlow(macPeerB, srcIPB, 443), Bytes: 5e5, Packets: 500},  // benign web
	}
	res := p.Egress(offers, 1.0)
	if res.RuleDroppedBytes != 1e6 {
		t.Fatalf("rule-dropped: %v", res.RuleDroppedBytes)
	}
	if res.DeliveredBytes != 5e5 {
		t.Fatalf("delivered: %v", res.DeliveredBytes)
	}
	// Telemetry counters reflect the drop.
	r, _ := p.Rule("drop-ntp")
	cs := r.Counters().Snapshot()
	if cs.MatchedBytes != 1e6 || cs.DroppedBytes != 1e6 || cs.ForwardedBytes != 0 {
		t.Fatalf("counters: %+v", cs)
	}
}

func TestEgressShapeQueue(t *testing.T) {
	p := newVictimPort()
	m := MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	shape := &Rule{ID: "shape-ntp", Match: m, Action: ActionShape, ShapeRateBps: 200e6}
	if err := p.InstallRule(shape); err != nil {
		t.Fatal(err)
	}
	// Offer 1 Gbps of NTP for 1 s; exactly 200 Mbit may pass per tick —
	// the bucket holds at most a 1 s burst, and the refill is clamped to
	// that burst before consumption.
	attack := Offer{Flow: udpFlow(macPeerA, srcIPA, 123), Bytes: 125e6, Packets: 1e5} // 1 Gbit
	res1 := p.Egress([]Offer{attack}, 1.0)
	want1 := 25e6 // 200 Mbit = 25 MB
	if math.Abs(res1.DeliveredBytes-want1) > 1 {
		t.Fatalf("tick1 delivered %v, want %v (clamped burst)", res1.DeliveredBytes, want1)
	}
	res2 := p.Egress([]Offer{attack}, 1.0)
	want2 := 25e6 // 200 Mbit steady state
	if math.Abs(res2.DeliveredBytes-want2) > 1 {
		t.Fatalf("tick2 delivered %v, want %v (steady state)", res2.DeliveredBytes, want2)
	}
	if math.Abs(res2.ShaperDroppedBytes-(125e6-25e6)) > 1 {
		t.Fatalf("shaper drop: %v", res2.ShaperDroppedBytes)
	}
	// The shaped residue is the telemetry signal.
	cs := shape.Counters().Snapshot()
	if cs.ShapedResidue <= 0 {
		t.Fatal("no shaped residue recorded")
	}
}

func TestEgressCongestionSharedFate(t *testing.T) {
	// No rules: a 2 Gbps offered load on a 1 Gbps port loses half of
	// every flow — the collateral-damage mechanism of Section 2.2.
	p := newVictimPort()
	attack := Offer{Flow: udpFlow(macPeerA, srcIPA, 11211), Bytes: 187.5e6, Packets: 1e5} // 1.5 Gbit
	web := Offer{Flow: tcpFlow(macPeerB, srcIPB, 443), Bytes: 62.5e6, Packets: 5e4}       // 0.5 Gbit
	res := p.Egress([]Offer{attack, web}, 1.0)
	capBytes := 1e9 / 8.0
	if math.Abs(res.DeliveredBytes-capBytes) > 1 {
		t.Fatalf("delivered %v, want capacity %v", res.DeliveredBytes, capBytes)
	}
	frac := capBytes / (187.5e6 + 62.5e6)
	if got := res.DeliveredByFlow[web.Flow]; math.Abs(got-web.Bytes*frac) > 1 {
		t.Fatalf("web delivered %v, want %v (proportional)", got, web.Bytes*frac)
	}
	if res.CongestionDroppedBytes <= 0 {
		t.Fatal("no congestion drop recorded")
	}
}

func TestEgressDropRestoresBenign(t *testing.T) {
	// Section 5.2's functional check: with the attack dropped by rule,
	// benign traffic passes untouched despite the attack exceeding the
	// port capacity.
	p := newVictimPort()
	if err := p.InstallRule(dropNTPRule()); err != nil {
		t.Fatal(err)
	}
	attack := Offer{Flow: udpFlow(macPeerA, srcIPA, 123), Bytes: 1.25e9, Packets: 1e6} // 10 Gbit
	web := Offer{Flow: tcpFlow(macPeerB, srcIPB, 443), Bytes: 62.5e6, Packets: 5e4}
	res := p.Egress([]Offer{attack, web}, 1.0)
	if got := res.DeliveredByFlow[web.Flow]; math.Abs(got-web.Bytes) > 1 {
		t.Fatalf("benign delivered %v, want full %v", got, web.Bytes)
	}
	if res.CongestionDroppedBytes != 0 {
		t.Fatalf("congestion drop with attack filtered: %v", res.CongestionDroppedBytes)
	}
}

func TestEgressFirstMatchWins(t *testing.T) {
	p := newVictimPort()
	mSpecific := MatchAll()
	mSpecific.Proto = netpkt.ProtoUDP
	mSpecific.SrcPort = 123
	mWide := MatchAll()
	mWide.Proto = netpkt.ProtoUDP
	if err := p.InstallRule(&Rule{ID: "fwd-ntp", Match: mSpecific, Action: ActionForward}); err != nil {
		t.Fatal(err)
	}
	if err := p.InstallRule(&Rule{ID: "drop-udp", Match: mWide, Action: ActionDrop}); err != nil {
		t.Fatal(err)
	}
	ntp := Offer{Flow: udpFlow(macPeerA, srcIPA, 123), Bytes: 100, Packets: 1}
	dns := Offer{Flow: udpFlow(macPeerA, srcIPA, 53), Bytes: 100, Packets: 1}
	res := p.Egress([]Offer{ntp, dns}, 1.0)
	if res.DeliveredBytes != 100 || res.RuleDroppedBytes != 100 {
		t.Fatalf("first-match: delivered=%v dropped=%v", res.DeliveredBytes, res.RuleDroppedBytes)
	}
}

func TestEgressPacketPath(t *testing.T) {
	p := newVictimPort()
	if err := p.InstallRule(dropNTPRule()); err != nil {
		t.Fatal(err)
	}
	ntp := netpkt.NewBuilder(macPeerA, macVictim).
		IPv4(srcIPA, victimIP).UDP(123, 443).PayloadLen(400).Build()
	if d := p.EgressPacket(ntp); d != DroppedByRule {
		t.Fatalf("ntp: %v", d)
	}
	web := netpkt.NewBuilder(macPeerB, macVictim).
		IPv4(srcIPB, victimIP).TCP(443, 50000, netpkt.FlagACK).PayloadLen(1000).Build()
	if d := p.EgressPacket(web); d != Delivered {
		t.Fatalf("web: %v", d)
	}
}

func TestEgressPacketShaper(t *testing.T) {
	p := NewPort("v", macVictim, 1e9)
	m := MatchAll()
	m.Proto = netpkt.ProtoUDP
	// 8000 bps: one 500-byte packet (4000 bits) per half second.
	if err := p.InstallRule(&Rule{ID: "s", Match: m, Action: ActionShape, ShapeRateBps: 8000}); err != nil {
		t.Fatal(err)
	}
	pkt := netpkt.NewBuilder(macPeerA, macVictim).IPv4(srcIPA, victimIP).UDP(123, 443).Build()
	pkt.WireLen = 500
	// Bucket starts with 1 s burst = 8000 bits = 2 packets.
	if d := p.EgressPacket(pkt); d != Delivered {
		t.Fatalf("pkt1: %v", d)
	}
	if d := p.EgressPacket(pkt); d != Delivered {
		t.Fatalf("pkt2: %v", d)
	}
	if d := p.EgressPacket(pkt); d != DroppedByShaper {
		t.Fatalf("pkt3: %v", d)
	}
	p.RefillShapers(0.5) // +4000 bits
	if d := p.EgressPacket(pkt); d != Delivered {
		t.Fatalf("pkt4 after refill: %v", d)
	}
}

func TestFabricSwitching(t *testing.T) {
	f := New()
	victim := newVictimPort()
	if err := f.AddPort(victim); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPort(NewPort("peerA", macPeerA, 10e9)); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPort(newVictimPort()); err != ErrDuplicatePort {
		t.Fatalf("dup: %v", err)
	}
	if _, err := f.PortByName("victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PortByMAC(macPeerA); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PortByName("ghost"); err != ErrNoSuchPort {
		t.Fatalf("ghost: %v", err)
	}
	if got := f.Ports(); len(got) != 2 || got[0].Name != "peerA" {
		t.Fatalf("Ports: %v", got)
	}

	pkt := netpkt.NewBuilder(macPeerA, macVictim).IPv4(srcIPA, victimIP).UDP(123, 443).Build()
	if d, err := f.SwitchPacket(pkt); err != nil || d != Delivered {
		t.Fatalf("switch: %v %v", d, err)
	}
	unknown := netpkt.NewBuilder(macPeerA, netpkt.MustParseMAC("02:ff:ff:ff:ff:ff")).
		IPv4(srcIPA, victimIP).UDP(1, 2).Build()
	if _, err := f.SwitchPacket(unknown); err == nil {
		t.Fatal("unknown dst accepted")
	}
	bcast := &netpkt.Packet{Eth: netpkt.Ethernet{Src: macPeerA, Dst: netpkt.Broadcast, Type: netpkt.EtherTypeARP}}
	if d, err := f.SwitchPacket(bcast); err != nil || d != Delivered {
		t.Fatalf("broadcast: %v %v", d, err)
	}
}

func TestFabricTick(t *testing.T) {
	f := New()
	if err := f.AddPort(newVictimPort()); err != nil {
		t.Fatal(err)
	}
	offers := TickOffers{
		"victim": {
			{Flow: udpFlow(macPeerA, srcIPA, 123), Bytes: 1000, Packets: 2},
		},
	}
	stats, err := f.Tick(offers, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalDeliveredBytes() != 1000 || stats.PlatformOfferedBytes != 1000 {
		t.Fatalf("stats: %+v", stats)
	}
	if _, err := f.Tick(TickOffers{"ghost": {{Bytes: 1}}}, 1.0); err == nil {
		t.Fatal("tick to unknown port accepted")
	}
}

func TestFabricPlatformCapacity(t *testing.T) {
	f := New()
	f.PlatformCapacityBps = 800 // 100 bytes/s
	if err := f.AddPort(NewPort("v", macVictim, 1e12)); err != nil {
		t.Fatal(err)
	}
	offers := TickOffers{"v": {{Flow: udpFlow(macPeerA, srcIPA, 1), Bytes: 400, Packets: 1}}}
	stats, err := f.Tick(offers, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.PlatformDroppedBytes-300) > 1e-9 {
		t.Fatalf("platform drop: %v", stats.PlatformDroppedBytes)
	}
	if math.Abs(stats.TotalDeliveredBytes()-100) > 1e-9 {
		t.Fatalf("delivered: %v", stats.TotalDeliveredBytes())
	}
}

func TestEgressConservationProperty(t *testing.T) {
	// Property: bytes offered == delivered + dropped (all causes), for
	// arbitrary offered loads and shaping rates.
	f := func(loads []uint32, shapeRate uint32, capacity uint32) bool {
		p := NewPort("x", macVictim, float64(capacity%1000000+1000))
		m := MatchAll()
		m.Proto = netpkt.ProtoUDP
		m.SrcPort = 123
		_ = p.InstallRule(&Rule{ID: "s", Match: m, Action: ActionShape,
			ShapeRateBps: float64(shapeRate % 100000)})
		var offers []Offer
		var total float64
		for i, l := range loads {
			if i > 20 {
				break
			}
			b := float64(l % 1000000)
			port := uint16(123)
			if i%2 == 0 {
				port = 443
			}
			offers = append(offers, Offer{Flow: udpFlow(macPeerA, srcIPA, port), Bytes: b, Packets: 1})
			total += b
		}
		res := p.Egress(offers, 1.0)
		return math.Abs(res.OfferedBytes()-total) < 1e-6*math.Max(total, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDispositionActionStrings(t *testing.T) {
	if Delivered.String() == "" || DroppedByRule.String() == "" ||
		DroppedByShaper.String() == "" || DroppedByCongestion.String() == "" {
		t.Fatal("disposition strings")
	}
	if ActionForward.String() != "forward" || ActionShape.String() != "shape" || ActionDrop.String() != "drop" {
		t.Fatal("action strings")
	}
	r := dropNTPRule()
	if r.String() == "" {
		t.Fatal("rule string")
	}
}

func BenchmarkEgressTick(b *testing.B) {
	p := newVictimPort()
	_ = p.InstallRule(dropNTPRule())
	offers := make([]Offer, 100)
	for i := range offers {
		offers[i] = Offer{Flow: udpFlow(macPeerA, srcIPA, uint16(i)), Bytes: 1e4, Packets: 10}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Egress(offers, 1.0)
	}
}

func BenchmarkClassify(b *testing.B) {
	p := newVictimPort()
	for i := 0; i < 16; i++ {
		m := MatchAll()
		m.Proto = netpkt.ProtoUDP
		m.SrcPort = int32(i)
		_ = p.InstallRule(&Rule{ID: string(rune('a' + i)), Match: m, Action: ActionDrop})
	}
	f := udpFlow(macPeerA, srcIPA, 9999) // no match: full scan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Classify(f)
	}
}
