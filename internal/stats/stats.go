package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (divisor n-1) of xs.
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs using linear interpolation between
// midpoints for even-length inputs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice. p is clamped to [0, 100].
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF represents an empirical cumulative distribution function built
// from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// P returns P(X <= x), the fraction of samples less than or equal to x.
func (e *ECDF) P(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v such that P(X <= v) >= q,
// for q in (0, 1].
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Len returns the number of samples in the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// WelchResult holds the outcome of Welch's unequal variances t-test.
type WelchResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // one-tailed p-value for H1: mean(a) > mean(b)
}

// WelchTTest performs Welch's unequal variances t-test comparing the means
// of a and b. The returned p-value is one-tailed, testing the alternative
// hypothesis mean(a) > mean(b) — the form used in Section 2.3 of the paper
// (significance level 0.02). Both samples need at least two observations.
func WelchTTest(a, b []float64) (WelchResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return WelchResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		// Identical constant samples: no evidence of difference.
		if ma == mb {
			return WelchResult{T: 0, DF: na + nb - 2, P: 0.5}, nil
		}
		t := math.Inf(1)
		if ma < mb {
			t = math.Inf(-1)
		}
		p := 0.0
		if ma < mb {
			p = 1.0
		}
		return WelchResult{T: t, DF: na + nb - 2, P: p}, nil
	}
	t := (ma - mb) / se
	num := (sa + sb) * (sa + sb)
	den := sa*sa/(na-1) + sb*sb/(nb-1)
	df := num / den
	p := 1 - StudentTCDF(t, df)
	return WelchResult{T: t, DF: df, P: p}, nil
}

// StudentTCDF returns the CDF of Student's t-distribution with df degrees
// of freedom evaluated at t, via the regularized incomplete beta function.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// StudentTQuantile returns the two-sided critical value t* such that a
// Student-t variable with df degrees of freedom satisfies
// P(-t* <= T <= t*) = confidence. It is used to build confidence intervals
// such as the 95% CIs in Figure 3(a).
func StudentTQuantile(confidence, df float64) float64 {
	if df <= 0 || confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	// Target upper-tail probability.
	target := 1 - (1-confidence)/2
	// CDF is monotone in t; bisect.
	lo, hi := 0.0, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MeanCI returns the mean of xs with the half-width of its two-sided
// confidence interval at the given confidence level (e.g. 0.95). It returns
// a zero half-width for fewer than two samples.
func MeanCI(xs []float64, confidence float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	tcrit := StudentTQuantile(confidence, float64(n-1))
	return mean, tcrit * se
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Linear is a fitted simple linear regression y = Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	SlopeSE   float64 // standard error of the slope
	N         int
}

// LinearFit fits an ordinary least-squares line through (xs[i], ys[i]).
// It is used for the control-plane CPU model in Figure 10(a).
func LinearFit(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var ssRes float64
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - ssRes/syy
	}
	var slopeSE float64
	if len(xs) > 2 {
		slopeSE = math.Sqrt(ssRes / (n - 2) / sxx)
	}
	return Linear{Slope: slope, Intercept: intercept, R2: r2, SlopeSE: slopeSE, N: len(xs)}, nil
}

// At evaluates the fitted line at x.
func (l Linear) At(x float64) float64 { return l.Slope*x + l.Intercept }

// SolveFor returns the x at which the fitted line reaches y. It returns
// NaN when the slope is zero.
func (l Linear) SolveFor(y float64) float64 {
	if l.Slope == 0 {
		return math.NaN()
	}
	return (y - l.Intercept) / l.Slope
}

// SlopeCI returns the half-width of the two-sided confidence interval for
// the slope at the given confidence level.
func (l Linear) SlopeCI(confidence float64) float64 {
	if l.N <= 2 {
		return 0
	}
	return StudentTQuantile(confidence, float64(l.N-2)) * l.SlopeSE
}
