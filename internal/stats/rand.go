package stats

import "math"

// Rand is a small, deterministic PRNG (xoshiro256**) used across the
// simulation so that experiments are reproducible from a seed without
// depending on math/rand's global state. It intentionally mirrors the
// subset of math/rand's API the simulators need.
type Rand struct {
	s [4]uint64
}

// NewRand returns a PRNG seeded from seed via SplitMix64, which guarantees
// a well-mixed non-zero internal state for any seed, including 0.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Pareto returns a Pareto-distributed variate with the given minimum and
// shape alpha. Heavy-tailed flow sizes in the traffic generator use this.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return xm / math.Pow(u, 1/alpha)
	}
}

// WeightedChoice returns an index i with probability weights[i]/sum(weights).
// It panics if weights is empty or sums to a non-positive value.
func (r *Rand) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("stats: WeightedChoice needs positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
