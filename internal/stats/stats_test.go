package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceBasic(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1 divisor: sum sq dev = 32, / 7.
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance(single) = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{95, 48},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{1, 3, 2}); got != 2 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("Median even = %v", got)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pp)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := e.Quantile(1); got != 3 {
		t.Errorf("Quantile(1) = %v, want 3", got)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		e := NewECDF(xs)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return e.P(a) <= e.P(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 10, 30, 100} {
		for _, x := range []float64{0, 0.5, 1, 2, 5} {
			p := StudentTCDF(x, df)
			q := StudentTCDF(-x, df)
			if !almostEq(p+q, 1, 1e-9) {
				t.Errorf("CDF(%v,df=%v)+CDF(-x) = %v, want 1", x, df, p+q)
			}
		}
		if got := StudentTCDF(0, df); !almostEq(got, 0.5, 1e-12) {
			t.Errorf("CDF(0, df=%v) = %v, want 0.5", df, got)
		}
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Standard t-table values.
	cases := []struct {
		conf, df, want float64
	}{
		{0.95, 10, 2.228},
		{0.95, 30, 2.042},
		{0.99, 10, 3.169},
		{0.95, 1, 12.706},
	}
	for _, c := range cases {
		if got := StudentTQuantile(c.conf, c.df); !almostEq(got, c.want, 0.01) {
			t.Errorf("tQuantile(%v, %v) = %v, want %v", c.conf, c.df, got, c.want)
		}
	}
}

func TestWelchTTestDistinguishes(t *testing.T) {
	// Clearly separated samples: p should be tiny for mean(a) > mean(b).
	a := []float64{30, 31, 29, 30.5, 30.2, 29.8, 30.1, 30.3}
	b := []float64{1, 1.2, 0.8, 1.1, 0.9, 1.05, 1.0, 0.95}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.02 {
		t.Fatalf("p = %v, want < 0.02 (significant at paper's level)", res.P)
	}
	if res.T <= 0 {
		t.Fatalf("t = %v, want positive", res.T)
	}
	// Reversed direction must NOT be significant.
	rev, err := WelchTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if rev.P < 0.98 {
		t.Fatalf("reversed p = %v, want ~1", rev.P)
	}
}

func TestWelchTTestIdentical(t *testing.T) {
	a := []float64{5, 5, 5}
	res, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0.5 {
		t.Fatalf("p for identical constant samples = %v, want 0.5", res.P)
	}
}

func TestWelchTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for n<2")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 10.5, 9.5, 11.5}
	mean, hw := MeanCI(xs, 0.95)
	if !almostEq(mean, Mean(xs), 1e-12) {
		t.Fatalf("mean mismatch")
	}
	if hw <= 0 {
		t.Fatalf("half width = %v, want > 0", hw)
	}
	// CI must contain the mean trivially and shrink with confidence.
	_, hw90 := MeanCI(xs, 0.90)
	if hw90 >= hw {
		t.Fatalf("90%% CI (%v) should be narrower than 95%% (%v)", hw90, hw)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 2
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 3, 1e-9) || !almostEq(fit.Intercept, 2, 1e-9) {
		t.Fatalf("fit = %+v, want slope 3 intercept 2", fit)
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.SolveFor(17); !almostEq(got, 5, 1e-9) {
		t.Fatalf("SolveFor(17) = %v, want 5", got)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for n<2")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for degenerate x")
	}
}

func TestLinearFitRecoveryProperty(t *testing.T) {
	// For any slope/intercept, fitting noiseless data recovers them.
	f := func(sRaw, iRaw uint16) bool {
		slope := float64(sRaw)/100 - 300
		intercept := float64(iRaw)/100 - 300
		xs := []float64{0, 1, 2, 3, 4, 5, 6}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return almostEq(fit.Slope, slope, 1e-6) && almostEq(fit.Intercept, intercept, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds too similar: %d matches", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnUniformish(t *testing.T) {
	r := NewRand(1)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(99)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", m)
	}
	if v := Variance(xs); math.Abs(v-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", v)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation")
		}
		seen[v] = true
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRand(5)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.0, 1.2)
		if v < 1 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 4}
	if Sum(xs) != 6 {
		t.Fatal("Sum")
	}
	if Min(xs) != -1 {
		t.Fatal("Min")
	}
	if Max(xs) != 4 {
		t.Fatal("Max")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max")
	}
}
