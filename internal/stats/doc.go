// Package stats provides the statistical primitives used by the Stellar
// evaluation pipeline: summary statistics, percentiles, empirical CDFs,
// Welch's unequal-variances t-test (used for Figure 3a's significance
// analysis), Student-t quantiles for confidence intervals, ordinary
// least-squares linear regression (used for Figure 10a), and the
// deterministic pseudo-random generator behind the traffic and
// population models.
//
// All functions are pure and operate on float64 slices. Inputs are never
// mutated; functions that need ordering work on copies.
package stats
