package ixp

import (
	"net/netip"
	"strings"
	"testing"

	"stellar/internal/core"
	"stellar/internal/hw"
	"stellar/internal/member"
	"stellar/internal/mitctl"
)

// TestGlassErrorsWiredToController drives a real install failure through
// the controller and asserts the member-facing looking glass reports it:
// the F1 counter moves and the last-error line names the failed change.
func TestGlassErrorsWiredToController(t *testing.T) {
	members := member.MakePopulation(member.PopulationConfig{
		N: 10, PortCapacityBps: 1e10, Seed: 11,
	})
	hook := func(ch core.ConfigChange, attempt int, now float64) error {
		if ch.Op == core.OpInstall {
			return hw.ErrL34Exhausted
		}
		return nil
	}
	x, err := Build(Config{
		ASN:              ixpASN,
		BlackholeNextHop: blackholeNH,
		Members:          members,
		EnableStellar:    true,
		QueueRate:        1000,
		QueueBurst:       1000,
		TuneController: func(mc *mitctl.Config) {
			mc.Retry = mitctl.RetryPolicy{MaxAttempts: 1}
			mc.InstallHook = hook
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before any failure the glass shows clean counters.
	if got := x.RS.GlassErrors(); !strings.Contains(got, "install errors: f1 0 f2 0") {
		t.Fatalf("pre-failure glass:\n%s", got)
	}

	victim := members[0]
	host := netip.PrefixFrom(victimAddr(victim), 32)
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := x.Announce(victim.Name, host, nil, []core.RuleSpec{core.DropUDPSrcPort(123)}); err != nil {
		t.Fatal(err)
	}
	// Drain the change queue: the install attempt hits the hook and fails.
	if _, err := x.Tick(nil, 1); err != nil {
		t.Fatal(err)
	}

	got := x.RS.GlassErrors()
	if !strings.Contains(got, "f1 1 ") {
		t.Fatalf("F1 counter not surfaced:\n%s", got)
	}
	if !strings.Contains(got, "last: ") || !strings.Contains(got, "L3-L4") {
		t.Fatalf("last error not surfaced:\n%s", got)
	}
}
