// Package ixp composes the full emulated exchange point: member ASes
// attached to switching-fabric ports, the route server with its
// routing-hygiene policy, the edge-router hardware model, and (when
// enabled) the Stellar controller wired to the route server's southbound
// feed. It adds the one behaviour no single substrate owns: how RTBH
// announcements propagate into member null-routing decisions, i.e. who
// actually stops sending traffic (Section 2.4).
package ixp

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"stellar/internal/bgp"
	"stellar/internal/core"
	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/irr"
	"stellar/internal/member"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/routeserver"
	"stellar/internal/traffic"
)

// Config assembles an IXP.
type Config struct {
	// Name identifies the exchange in multi-IXP compositions
	// (federation gossip provenance, consolidated reports). A
	// single-exchange deployment can leave it empty.
	Name string
	// ASN is the IXP's AS number.
	ASN uint32
	// BlackholeNextHop is the RTBH null-route next hop.
	BlackholeNextHop netip.Addr
	// Members joins the given members to the fabric and route server.
	Members []*member.Member
	// EnableStellar wires the mitigation control plane (a mitctl
	// controller over a QoS manager, fed by the route server).
	EnableStellar bool
	// QueueRate and QueueBurst configure the controller's change queue
	// (defaults: 4.33/s, burst 20).
	QueueRate  float64
	QueueBurst int
	// MitigationTTL is the default lifetime applied to community- and
	// API-signaled mitigations that carry none (0: never expire —
	// withdrawal stays explicit, matching plain BGP semantics).
	MitigationTTL float64
	// MaxMitigationsPerMember bounds a member's live mitigations at the
	// controller (0: only the hardware budget applies).
	MaxMitigationsPerMember int
	// HWUnitN is the hardware budget unit (defaults hw.RTBHUnitN).
	HWUnitN int
	// PlatformCapacityBps optionally constrains the switching core.
	PlatformCapacityBps float64
	// TuneController adjusts the mitigation controller's configuration
	// — retry/backoff policy, install deadlines, the degradation
	// ladder, fault-injection hooks — after the standard wiring and
	// before the controller is built. When the hook enables the
	// degradation ladder without a headroom source, Build wires the
	// edge router's.
	TuneController func(*mitctl.Config)
}

// IXP is a fully wired exchange point.
type IXP struct {
	Cfg    Config
	RS     *routeserver.RouteServer
	Fabric *fabric.Fabric
	Router *hw.EdgeRouter
	Policy *irr.Policy
	// Mitigations is the unified mitigation lifecycle controller; every
	// signaling channel (BGP communities via Community, FlowSpec specs,
	// the portal, and the direct RequestMitigation API) compiles into
	// it. Nil unless Config.EnableStellar.
	Mitigations *mitctl.Controller
	// Community is the BGP extended-community signaling adapter feeding
	// Mitigations from the route server's southbound feed.
	Community *mitctl.CommunityChannel

	mu      sync.Mutex
	clock   float64
	members map[string]*member.Member
	byMAC   map[netpkt.MAC]*member.Member
	// nullRoutes[memberName] is the set of prefixes the member has
	// null-routed in response to accepted RTBH announcements.
	nullRoutes map[string]map[netip.Prefix]bool
}

// Build constructs and wires the IXP.
func Build(cfg Config) (*IXP, error) {
	if cfg.QueueRate == 0 {
		cfg.QueueRate = 4.33
	}
	if cfg.QueueBurst == 0 {
		cfg.QueueBurst = 20
	}
	if cfg.HWUnitN == 0 {
		cfg.HWUnitN = hw.RTBHUnitN
	}
	x := &IXP{
		Cfg:        cfg,
		Fabric:     fabric.New(),
		Policy:     irr.NewPolicy(),
		members:    make(map[string]*member.Member),
		byMAC:      make(map[netpkt.MAC]*member.Member),
		nullRoutes: make(map[string]map[netip.Prefix]bool),
	}
	x.Fabric.PlatformCapacityBps = cfg.PlatformCapacityBps
	x.RS = routeserver.New(routeserver.Config{
		ASN:              cfg.ASN,
		BlackholeNextHop: cfg.BlackholeNextHop,
		Policy:           x.Policy,
	})
	x.Router = hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(len(cfg.Members), cfg.HWUnitN))

	portIndex := make(map[string]int, len(cfg.Members))
	for i, m := range cfg.Members {
		if _, dup := x.members[m.Name]; dup {
			return nil, fmt.Errorf("ixp: duplicate member %s", m.Name)
		}
		x.members[m.Name] = m
		x.byMAC[m.MAC] = m
		x.nullRoutes[m.Name] = make(map[netip.Prefix]bool)
		if err := x.Fabric.AddPort(fabric.NewPort(m.Name, m.MAC, m.PortCapacityBps)); err != nil {
			return nil, err
		}
		if err := x.RS.AddPeer(routeserver.PeerConfig{Name: m.Name, ASN: m.ASN, BGPID: m.BGPID}); err != nil {
			return nil, err
		}
		for _, p := range m.Prefixes {
			x.Policy.IRR.Register(m.ASN, p)
		}
		portIndex[m.Name] = i
	}

	if cfg.EnableStellar {
		mgr := core.NewQoSManager(x.Fabric, x.Router, portIndex)
		mcfg := mitctl.Config{
			Manager:    mgr,
			QueueRate:  cfg.QueueRate,
			QueueBurst: cfg.QueueBurst,
			Validator: &mitctl.IRRValidator{
				Registry: x.Policy.IRR,
				ASNOf: func(name string) (uint32, bool) {
					m, ok := x.members[name]
					if !ok {
						return 0, false
					}
					return m.ASN, true
				},
			},
			MemberMAC: func(name string) (netpkt.MAC, bool) {
				m, ok := x.members[name]
				if !ok {
					return netpkt.MAC{}, false
				}
				return m.MAC, true
			},
			MaxActivePerMember: cfg.MaxMitigationsPerMember,
			DefaultTTL:         cfg.MitigationTTL,
		}
		if cfg.TuneController != nil {
			cfg.TuneController(&mcfg)
		}
		if mcfg.Degrade.Enabled && mcfg.Degrade.Headroom == nil {
			mcfg.Degrade.Headroom = x.Router.Headroom
		}
		x.Mitigations = mitctl.New(mcfg)
		x.Community = mitctl.NewCommunityChannel(x.Mitigations)
		x.RS.Subscribe(func(ev routeserver.ControllerEvent) {
			x.Community.HandleEvent(ev, x.Clock())
		})
		x.RS.SetMitigationSource(x.mitigationRows)
		x.RS.SetErrorSource(x.errorSummary)
	}
	return x, nil
}

// errorSummary feeds the route server's looking glass with the
// controller's install-failure telemetry.
func (x *IXP) errorSummary() routeserver.ErrorSummary {
	if x.Mitigations == nil {
		return routeserver.ErrorSummary{}
	}
	ec := x.Mitigations.ErrorClasses()
	s := routeserver.ErrorSummary{
		F1: ec.F1, F2: ec.F2, QoS: ec.QoS,
		QueueDeadline: ec.QueueDeadline, Other: ec.Other,
	}
	if ae, ok := x.Mitigations.LastError(); ok {
		s.LastError = fmt.Sprintf("%s: %v", ae.Change, ae.Err)
	}
	return s
}

// PeerDown models a member's BGP session loss: the route server flushes
// everything the member announced and the withdrawals propagate to the
// population (RTBH null routes lift). The member stays registered — a
// later re-announcement (session recovery) restores its routes. This is
// the control-plane leg of a session flap (faults.KindSessionFlap).
func (x *IXP) PeerDown(memberName string) error {
	if _, err := x.Member(memberName); err != nil {
		return err
	}
	exports, err := x.RS.HandleWithdrawAll(memberName)
	if err != nil {
		return err
	}
	x.applyExports(exports)
	return nil
}

// mitigationRows feeds the route server's looking glass with the
// controller's live mitigations, their remaining TTL and cumulative
// data-plane effect.
func (x *IXP) mitigationRows() []routeserver.MitigationRow {
	if x.Mitigations == nil {
		return nil
	}
	return mitctl.MitigationRows(x.Mitigations, x.Clock())
}

// RequestMitigation is the direct (API/portal) signaling channel: the
// spec enters the lifecycle at the current simulation time and its
// rules take effect when the next tick processes the change queue —
// exactly like a BGP-signaled request.
func (x *IXP) RequestMitigation(spec mitctl.Spec) (mitctl.Mitigation, error) {
	if x.Mitigations == nil {
		return mitctl.Mitigation{}, fmt.Errorf("ixp: mitigation control plane not enabled")
	}
	return x.Mitigations.Request(spec, x.Clock())
}

// WithdrawMitigation retracts a mitigation by ID, enforcing ownership.
func (x *IXP) WithdrawMitigation(id, requester string) error {
	if x.Mitigations == nil {
		return fmt.Errorf("ixp: mitigation control plane not enabled")
	}
	return x.Mitigations.Withdraw(id, requester, x.Clock())
}

// Name returns the exchange's configured name ("" for a standalone
// deployment that never set one).
func (x *IXP) Name() string { return x.Cfg.Name }

// Clock returns the current simulation time in seconds.
func (x *IXP) Clock() float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.clock
}

// Member returns a member by name.
func (x *IXP) Member(name string) (*member.Member, error) {
	if m, ok := x.members[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("ixp: unknown member %s", name)
}

// MemberByMAC resolves a fabric source MAC to its member.
func (x *IXP) MemberByMAC(mac netpkt.MAC) (*member.Member, bool) {
	m, ok := x.byMAC[mac]
	return m, ok
}

// MemberFilter returns the engine.Config.MemberFilter that counts only
// registered member MACs toward ActivePeers — the filter every
// engine-on-IXP run wants; leaving Config.MemberFilter nil counts every
// stray source MAC.
func (x *IXP) MemberFilter() func(netpkt.MAC) bool {
	return func(mac netpkt.MAC) bool {
		_, ok := x.byMAC[mac]
		return ok
	}
}

// PeersOf converts members into traffic-generator peers, using the first
// address of each member's first prefix as the representative source.
func PeersOf(members []*member.Member) []traffic.Peer {
	peers := make([]traffic.Peer, 0, len(members))
	for _, m := range members {
		src := netip.Addr{}
		if len(m.Prefixes) > 0 {
			src = m.Prefixes[0].Addr().Next()
		}
		peers = append(peers, traffic.Peer{Name: m.Name, MAC: m.MAC, SrcIP: src})
	}
	return peers
}

// Announce sends a BGP announcement from a member to the route server:
// prefix, communities, and Advanced Blackholing rule signals. It applies
// the resulting exports to the member population (RTBH honoring).
//
// The specs parameter is the legacy rule-signaling façade: each spec is
// encoded as an Advanced Blackholing extended community and compiled
// into the mitigation lifecycle by the community channel, exactly as if
// the member had built the announcement itself. New code that does not
// need the BGP leg should declare a mitctl.Spec and call
// RequestMitigation; both paths produce identical installed state.
func (x *IXP) Announce(memberName string, prefix netip.Prefix, communities []bgp.Community, specs []core.RuleSpec) error {
	m, err := x.Member(memberName)
	if err != nil {
		return err
	}
	attrs := bgp.PathAttrs{
		Origin:      bgp.OriginIGP,
		ASPath:      []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{m.ASN}}},
		NextHop:     m.BGPID, // router address on the peering LAN
		Communities: communities,
	}
	for _, s := range specs {
		ec, err := s.Encode()
		if err != nil {
			return err
		}
		attrs.ExtCommunities = append(attrs.ExtCommunities, ec)
	}
	u := &bgp.Update{Attrs: attrs}
	if prefix.Addr().Is4() {
		u.NLRI = []bgp.PathPrefix{{Prefix: prefix}}
	} else {
		// IPv6 reachability rides MP-BGP (RFC 4760); the next hop is the
		// member's router on the v6 peering LAN.
		u.Attrs.NextHop = netip.Addr{}
		u.Attrs.MPReach = &bgp.MPReach{
			AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
			NextHop: netip.AddrFrom16(netip.MustParseAddr("2001:db8:ff::1").As16()),
			NLRI:    []bgp.PathPrefix{{Prefix: prefix}},
		}
	}
	exports, rejections, err := x.RS.HandleUpdateBatch(memberName, u)
	if err != nil {
		return err
	}
	if len(rejections) > 0 {
		return fmt.Errorf("ixp: announcement rejected: %s", rejections[0].Reason)
	}
	x.applyExports(exports)
	return nil
}

// Withdraw retracts a member's announcement.
func (x *IXP) Withdraw(memberName string, prefix netip.Prefix) error {
	u := &bgp.Update{}
	if prefix.Addr().Is4() {
		u.Withdrawn = []bgp.PathPrefix{{Prefix: prefix}}
	} else {
		u.Attrs.MPUnreach = &bgp.MPUnreach{
			AFI: bgp.AFIIPv6, SAFI: bgp.SAFIUnicast,
			NLRI: []bgp.PathPrefix{{Prefix: prefix}},
		}
	}
	exports, _, err := x.RS.HandleUpdateBatch(memberName, u)
	if err != nil {
		return err
	}
	x.applyExports(exports)
	return nil
}

// HandleWireUpdate feeds one parsed wire-format BGP update from a
// member into the route server and applies the resulting exports to the
// member population, exactly like Announce/Withdraw do for built
// updates. Policy rejections are not errors: a replayed capture keeps
// playing past routes the hygiene policy filters, matching how a real
// route server treats a misbehaving peer. This is the control-plane
// entry point for capture replay (engine.ReplayConfig.Apply).
func (x *IXP) HandleWireUpdate(memberName string, u *bgp.Update) error {
	if _, err := x.Member(memberName); err != nil {
		return err
	}
	exports, _, err := x.RS.HandleUpdateBatch(memberName, u)
	if err != nil {
		return err
	}
	x.applyExports(exports)
	return nil
}

// applyExports models each member's reaction to route server exports:
// members that honor RTBH install (or remove) null routes for
// blackholed prefixes. Members that do not honor them ignore the signal
// — the ~70% of Section 2.4.
func (x *IXP) applyExports(exports []routeserver.PeerUpdates) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, e := range exports {
		m, ok := x.members[e.Peer]
		if !ok {
			continue
		}
		for _, u := range e.Updates {
			for _, w := range u.AllWithdrawn() {
				delete(x.nullRoutes[m.Name], w.Prefix)
			}
			for _, a := range u.AllAnnounced() {
				isBH := u.Attrs.NextHop == x.Cfg.BlackholeNextHop && x.Cfg.BlackholeNextHop.IsValid()
				if !isBH {
					continue
				}
				// Seeing the /32 at all requires accepting more specifics;
				// acting on it requires blackhole support.
				if m.HonorsRTBH() {
					x.nullRoutes[m.Name][a.Prefix] = true
				}
			}
		}
	}
}

// NullRouted reports whether source member name currently null-routes
// dst (i.e. its traffic to dst dies at the IXP's null interface).
func (x *IXP) NullRouted(name string, dst netip.Addr) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	for p := range x.nullRoutes[name] {
		if p.Contains(dst) {
			return true
		}
	}
	return false
}

// NullRouteCount returns how many members installed a null route
// covering dst.
func (x *IXP) NullRouteCount(dst netip.Addr) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for _, routes := range x.nullRoutes {
		for p := range routes {
			if p.Contains(dst) {
				n++
				break
			}
		}
	}
	return n
}

// TickReport summarizes one simulation tick at one destination port.
// It is the engine's per-port report type under its historical ixp
// name.
type TickReport = engine.PortReport

// Tick advances the simulation by dt seconds, delivering offers grouped
// by destination port. Stellar's pending configuration changes are
// processed first (they take effect this tick), then RTBH null routes
// filter traffic from honoring members, then the fabric switches the
// rest.
//
// Tick is the serial façade over the engine's two primitives: one
// ControlTick (clock advance + control-plane processing) followed by
// one EgressTick (null-route filter + fabric egress), with every stage
// finishing before the call returns. Pipelined multi-tick runs go
// through engine.New / Scenario.RunAll instead, which overlap tick N's
// monitoring with tick N+1's egress on a shared worker pool; both paths
// produce identical per-port reports.
func (x *IXP) Tick(offers fabric.TickOffers, dt float64) (map[string]TickReport, error) {
	return x.TickStream(offers, dt, nil)
}

// TickStream is Tick with the flow-monitoring pipeline attached: when
// sink is non-nil, each port's delivered flows stream into the sink's
// per-worker visitors during the tick (see fabric.TickStream) and the
// per-port TickResult.DeliveredByFlow maps are not materialized.
func (x *IXP) TickStream(offers fabric.TickOffers, dt float64, sink fabric.TickSink) (map[string]TickReport, error) {
	x.ControlTick(0, dt)
	return x.EgressTick(nil, offers, dt, sink)
}

// ControlTick implements engine.Control: it advances the simulation
// clock by dt and applies everything that became due — the mitigation
// controller's paced change queue drains and TTLs expire. The engine's
// control stage drives it once per tick on the pipeline spine, strictly
// ordered between the previous tick's egress and this tick's; the tick
// argument is informational (the IXP's clock is the authority).
func (x *IXP) ControlTick(_ int, dt float64) float64 {
	x.mu.Lock()
	x.clock += dt
	now := x.clock
	x.mu.Unlock()
	if x.Mitigations != nil {
		// Pending configuration changes apply and due TTLs expire before
		// traffic egresses: the controller's clock is the tick loop.
		x.Mitigations.Process(now)
	}
	return now
}

// EgressTick implements engine.DataPlane: one tick of the data plane
// only — RTBH null routes filter traffic from honoring members, then
// the fabric switches the rest — without touching the clock or the
// control plane.
//
// The per-port work — null-route filtering here, then each port's
// egress tick inside fabric.TickStreamOn — fans across member ports on
// the supplied runner (nil: a per-call GOMAXPROCS fan-out; the engine
// passes its shared worker pool). The null-route table is snapshotted
// once per tick so the filter does per-offer checks without touching
// the IXP lock, and per-port results are merged by name, so the outcome
// is deterministic.
func (x *IXP) EgressTick(r fabric.Runner, offers fabric.TickOffers, dt float64, sink fabric.TickSink) (map[string]TickReport, error) {
	if r == nil {
		r = fabric.DefaultRunner()
	}
	x.mu.Lock()
	nulls := make(map[string][]netip.Prefix, len(x.nullRoutes))
	for name, routes := range x.nullRoutes {
		if len(routes) == 0 {
			continue
		}
		ps := make([]netip.Prefix, 0, len(routes))
		for p := range routes {
			ps = append(ps, p)
		}
		nulls[name] = ps
	}
	x.mu.Unlock()

	names := make([]string, 0, len(offers))
	for name := range offers {
		names = append(names, name)
	}
	sort.Strings(names)
	reps := make([]TickReport, len(names))
	kept := make([][]fabric.Offer, len(names))
	filterPort := func(i int) {
		rep := TickReport{}
		os := offers[names[i]]
		// First pass: account the offered load and detect null-routed
		// offers. The port's offer slice is only copied when something
		// actually dies here, so the steady state (no RTBH hit on this
		// port) does zero per-tick slice allocation.
		nulled := false
		for _, o := range os {
			rep.OfferedBytes += o.Bytes
			if len(nulls) == 0 {
				continue
			}
			if src, ok := x.byMAC[o.Flow.SrcMAC]; ok && anyContains(nulls[src.Name], o.Flow.Dst) {
				rep.NulledBytes += o.Bytes
				nulled = true
			}
		}
		if !nulled {
			reps[i] = rep
			kept[i] = os
			return
		}
		keep := make([]fabric.Offer, 0, len(os))
		for _, o := range os {
			if src, ok := x.byMAC[o.Flow.SrcMAC]; ok && anyContains(nulls[src.Name], o.Flow.Dst) {
				continue
			}
			keep = append(keep, o)
		}
		reps[i] = rep
		kept[i] = keep
	}
	if len(nulls) == 0 {
		// No null routes installed: the filter degenerates to a byte sum,
		// not worth a worker-pool fan-out.
		for i := range names {
			filterPort(i)
		}
	} else {
		r.Run(len(names), func(_, i int) { filterPort(i) })
	}

	reports := make(map[string]TickReport, len(names))
	filtered := make(fabric.TickOffers, len(names))
	for i, name := range names {
		filtered[name] = kept[i]
		reports[name] = reps[i]
	}
	stats, err := x.Fabric.TickStreamOn(r, filtered, dt, sink)
	if err != nil {
		return nil, err
	}
	for portName, res := range stats.PerPort {
		rep := reports[portName]
		rep.Result = res
		reports[portName] = rep
	}
	return reports, nil
}

// anyContains reports whether any prefix covers dst.
func anyContains(prefixes []netip.Prefix, dst netip.Addr) bool {
	for _, p := range prefixes {
		if p.Contains(dst) {
			return true
		}
	}
	return false
}

// ActivePeers counts the distinct source members whose delivered bytes
// at the port exceeded minBytes in the given tick result. It needs the
// materialized DeliveredByFlow map, so it only works on Tick results
// (TickStream leaves the map nil; use the flow monitor's PeerCount, as
// Scenario.Run does).
func (x *IXP) ActivePeers(res fabric.TickResult, minBytes float64) int {
	perMember := make(map[string]float64)
	for flow, bytes := range res.DeliveredByFlow {
		if m, ok := x.byMAC[flow.SrcMAC]; ok {
			perMember[m.Name] += bytes
		}
	}
	n := 0
	for _, b := range perMember {
		if b > minBytes {
			n++
		}
	}
	return n
}
