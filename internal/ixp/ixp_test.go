package ixp

import (
	"fmt"
	"math"
	"net/netip"
	"strings"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/member"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

const ixpASN = 6695

var blackholeNH = netip.MustParseAddr("80.81.193.66")

// buildTestIXP creates an IXP with n members, honoring fraction f.
func buildTestIXP(t *testing.T, n int, honorFrac float64, stellarOn bool) (*IXP, []*member.Member) {
	t.Helper()
	members := member.MakePopulation(member.PopulationConfig{
		N: n, HonoringFraction: honorFrac, PortCapacityBps: 1e10, Seed: 11,
	})
	// The victim gets a 1 Gbps port (the paper's monitored member port).
	members[0].PortCapacityBps = 1e9
	x, err := Build(Config{
		ASN:              ixpASN,
		BlackholeNextHop: blackholeNH,
		Members:          members,
		EnableStellar:    stellarOn,
		QueueRate:        1000, // effectively unthrottled for unit tests
		QueueBurst:       1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return x, members
}

func victimAddr(m *member.Member) netip.Addr {
	return m.Prefixes[0].Addr().Next() // .1 in the member's /24
}

func TestBuildWiring(t *testing.T) {
	x, members := buildTestIXP(t, 20, 0.3, true)
	if len(x.RS.Peers()) != 20 {
		t.Fatalf("peers: %d", len(x.RS.Peers()))
	}
	if got := len(x.Fabric.Ports()); got != 20 {
		t.Fatalf("ports: %d", got)
	}
	if x.Mitigations == nil || x.Community == nil {
		t.Fatal("mitigation control plane not wired")
	}
	if _, err := x.Member(members[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Member("ghost"); err == nil {
		t.Fatal("ghost member found")
	}
	if _, ok := x.MemberByMAC(members[3].MAC); !ok {
		t.Fatal("MemberByMAC")
	}
	owner, err := x.VictimOwner(victimAddr(members[0]))
	if err != nil || owner != members[0].Name {
		t.Fatalf("VictimOwner: %v %v", owner, err)
	}
	if _, err := x.VictimOwner(netip.MustParseAddr("9.9.9.9")); err == nil {
		t.Fatal("unowned address resolved")
	}
}

func TestBuildDuplicateMember(t *testing.T) {
	members := member.MakePopulation(member.PopulationConfig{N: 2, Seed: 1})
	members[1] = members[0]
	if _, err := Build(Config{ASN: 1, Members: members}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestRTBHHonoringOnlyHonoringMembersNullRoute(t *testing.T) {
	x, members := buildTestIXP(t, 50, 0.3, false)
	victim := members[0]
	target := victimAddr(victim)
	host := netip.PrefixFrom(target, 32)

	// Victim announces its /24, then blackholes the /32.
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := x.Announce(victim.Name, host, []bgp.Community{bgp.CommunityBlackhole}, nil); err != nil {
		t.Fatal(err)
	}

	honoring := 0
	for _, m := range members[1:] {
		if m.HonorsRTBH() {
			honoring++
			if !x.NullRouted(m.Name, target) {
				t.Fatalf("honoring member %s did not null-route", m.Name)
			}
		} else if x.NullRouted(m.Name, target) {
			t.Fatalf("non-honoring member %s null-routed", m.Name)
		}
	}
	if honoring == 0 {
		t.Fatal("test needs at least one honoring member")
	}
	if got := x.NullRouteCount(target); got != honoring {
		t.Fatalf("NullRouteCount: %d, want %d", got, honoring)
	}

	// Withdrawal clears the null routes.
	if err := x.Withdraw(victim.Name, host); err != nil {
		t.Fatal(err)
	}
	if got := x.NullRouteCount(target); got != 0 {
		t.Fatalf("null routes after withdraw: %d", got)
	}
}

func TestTickNullRoutingDropsHonoringTraffic(t *testing.T) {
	x, members := buildTestIXP(t, 10, 1.0, false) // everyone honors
	victim := members[0]
	target := victimAddr(victim)
	host := netip.PrefixFrom(target, 32)
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := x.Announce(victim.Name, host, []bgp.Community{bgp.CommunityBlackhole}, nil); err != nil {
		t.Fatal(err)
	}

	rng := stats.NewRand(1)
	attack := traffic.NewAttack(traffic.VectorNTP, target, PeersOf(members[1:]), 1e9, 0, 100, rng)
	attack.RampTicks = 0
	offers := attack.Offers(10, 1)
	reports, err := x.Tick(fabric.TickOffers{victim.Name: offers}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[victim.Name]
	if rep.NulledBytes <= 0 {
		t.Fatal("no traffic nulled")
	}
	if rep.Result.DeliveredBytes != 0 {
		t.Fatalf("delivered despite full honoring: %v", rep.Result.DeliveredBytes)
	}
}

func TestStellarEndToEndMitigation(t *testing.T) {
	// The complete §5.3 signal path: announce /32 with an AdvBH drop
	// signal -> controller -> QoS rule -> attack dies, web lives.
	x, members := buildTestIXP(t, 10, 0.0, true) // nobody honors RTBH
	victim := members[0]
	target := victimAddr(victim)
	host := netip.PrefixFrom(target, 32)
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		t.Fatal(err)
	}

	rng := stats.NewRand(2)
	peers := PeersOf(members[1:])
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers, 2e9, 0, 1000, rng)
	attack.RampTicks = 0
	web := traffic.NewWebService(target, peers[:3], 4e8, rng)

	mkOffers := func(tick int) []fabric.Offer {
		return append(attack.Offers(tick, 1), web.Offers(tick, 1)...)
	}

	// Before mitigation: congestion, web suffers.
	reports, err := x.Tick(fabric.TickOffers{victim.Name: mkOffers(0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pre := reports[victim.Name]
	if pre.Result.CongestionDroppedBytes <= 0 {
		t.Fatal("expected congestion before mitigation")
	}

	// Signal Advanced Blackholing: drop UDP src 123 toward the /32.
	if err := x.Announce(victim.Name, host, nil, []core.RuleSpec{core.DropUDPSrcPort(123)}); err != nil {
		t.Fatal(err)
	}
	// Next tick applies the queued change, then filters.
	reports, err = x.Tick(fabric.TickOffers{victim.Name: mkOffers(1)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	post := reports[victim.Name]
	if post.Result.RuleDroppedBytes <= 0 {
		t.Fatalf("rule did not drop: %+v (controller errs %v)", post.Result, x.Mitigations.Errors())
	}
	// Web traffic delivered in full: 4e8 bps = 5e7 bytes.
	if post.Result.DeliveredBytes < 4.9e7 || post.Result.DeliveredBytes > 5.1e7 {
		t.Fatalf("delivered: %v, want ~5e7 (web only)", post.Result.DeliveredBytes)
	}
	if post.Result.CongestionDroppedBytes != 0 {
		t.Fatal("congestion after mitigation")
	}
}

func TestScenarioRunsEvents(t *testing.T) {
	x, members := buildTestIXP(t, 10, 0.0, true)
	victim := members[0]
	target := victimAddr(victim)
	host := netip.PrefixFrom(target, 32)
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(3)
	peers := PeersOf(members[1:])
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers, 1e9, 5, 100, rng)

	sc := &Scenario{
		IXP:        x,
		VictimPort: victim.Name,
		Ticks:      30,
		Dt:         1,
		Sources:    []Source{attack},
		Events: []Event{
			{Tick: 15, Name: "drop ntp", Do: func(ix *IXP) error {
				return ix.Announce(victim.Name, host, nil, []core.RuleSpec{core.DropUDPSrcPort(123)})
			}},
		},
	}
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 30 {
		t.Fatalf("samples: %d", len(samples))
	}
	// Quiet before attack, loud during, near-zero after mitigation.
	if samples[2].DeliveredBps != 0 {
		t.Fatalf("tick 2 delivered: %v", samples[2].DeliveredBps)
	}
	during := MeanDeliveredBps(samples, 10, 15)
	if during < 5e8 {
		t.Fatalf("during attack: %v", during)
	}
	after := MeanDeliveredBps(samples, 18, 30)
	if after > during/10 {
		t.Fatalf("after mitigation: %v (during %v)", after, during)
	}
	if MeanActivePeers(samples, 10, 15) <= MeanActivePeers(samples, 20, 30) {
		t.Fatal("peer count did not fall after drop")
	}
}

func TestScenarioUnknownVictim(t *testing.T) {
	x, _ := buildTestIXP(t, 3, 0, false)
	sc := &Scenario{IXP: x, VictimPort: "ghost", Ticks: 1}
	if _, err := sc.Run(); err == nil {
		t.Fatal("unknown victim accepted")
	}
}

func TestScenarioEventError(t *testing.T) {
	x, members := buildTestIXP(t, 3, 0, false)
	sc := &Scenario{
		IXP: x, VictimPort: members[0].Name, Ticks: 5,
		Events: []Event{{Tick: 1, Name: "bad", Do: func(ix *IXP) error {
			return ix.Announce("ghost", members[0].Prefixes[0], nil, nil)
		}}},
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("event error swallowed")
	}
}

func TestAnnounceRejectedPropagates(t *testing.T) {
	x, members := buildTestIXP(t, 3, 0, false)
	// Announce a prefix the member does not own.
	err := x.Announce(members[0].Name, netip.MustParsePrefix("8.8.8.0/24"), nil, nil)
	if err == nil {
		t.Fatal("hijack accepted")
	}
}

func TestMeanHelpersEmptyRange(t *testing.T) {
	if MeanDeliveredBps(nil, 0, 10) != 0 || MeanActivePeers(nil, 0, 10) != 0 {
		t.Fatal("empty range should be 0")
	}
}

func TestIPv6BlackholingEndToEnd(t *testing.T) {
	// The IPv6 path: a member announces a /48, then blackholes a /128
	// with an Advanced Blackholing signal; the controller installs a v6
	// rule and the fabric drops matching traffic.
	x, members := buildTestIXP(t, 6, 0.0, true)
	victim := members[0]
	v6Prefix := netip.MustParsePrefix("2001:db8:100::/48")
	victim.Prefixes = append(victim.Prefixes, v6Prefix)
	x.Policy.IRR.Register(victim.ASN, v6Prefix)
	target6 := netip.MustParseAddr("2001:db8:100::10")
	host6 := netip.PrefixFrom(target6, 128)

	if err := x.Announce(victim.Name, v6Prefix, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := x.Announce(victim.Name, host6, nil, []core.RuleSpec{core.DropUDPSrcPort(123)}); err != nil {
		t.Fatal(err)
	}
	// A plain /128 without a blackholing signal must be rejected.
	other6 := netip.PrefixFrom(netip.MustParseAddr("2001:db8:100::99"), 128)
	if err := x.Announce(victim.Name, other6, nil, nil); err == nil {
		t.Fatal("plain /128 accepted")
	}

	// Attack traffic over IPv6 toward the /128.
	attacker := members[1]
	offer := fabric.Offer{
		Flow: netpkt.FlowKey{
			SrcMAC: attacker.MAC,
			Src:    netip.MustParseAddr("2001:db8:bad::1"),
			Dst:    target6,
			Proto:  netpkt.ProtoUDP, SrcPort: 123, DstPort: 443,
		},
		Bytes: 1e6, Packets: 1000,
	}
	web := fabric.Offer{
		Flow: netpkt.FlowKey{
			SrcMAC: attacker.MAC,
			Src:    netip.MustParseAddr("2001:db8:bad::1"),
			Dst:    target6,
			Proto:  netpkt.ProtoTCP, SrcPort: 50000, DstPort: 443,
		},
		Bytes: 5e5, Packets: 500,
	}
	reports, err := x.Tick(fabric.TickOffers{victim.Name: {offer, web}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[victim.Name]
	if rep.Result.RuleDroppedBytes != 1e6 {
		t.Fatalf("v6 rule drop: %v (controller errs: %v)", rep.Result.RuleDroppedBytes, x.Mitigations.Errors())
	}
	if rep.Result.DeliveredBytes != 5e5 {
		t.Fatalf("v6 benign delivered: %v", rep.Result.DeliveredBytes)
	}

	// Withdraw removes the v6 rule.
	if err := x.Withdraw(victim.Name, host6); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Tick(fabric.TickOffers{}, 1); err != nil {
		t.Fatal(err)
	}
	port, _ := x.Fabric.PortByName(victim.Name)
	if port.RuleCount() != 0 {
		t.Fatalf("v6 rule not removed: %d", port.RuleCount())
	}
}

func TestMemberSessionLossCleansRules(t *testing.T) {
	// Failure injection: the victim's BGP session dies; the route server
	// withdraws everything (RFC 4271 implicit withdraw) and Stellar must
	// tear the member's blackholing rules down.
	x, members := buildTestIXP(t, 6, 0.0, true)
	victim := members[0]
	target := victimAddr(victim)
	host := netip.PrefixFrom(target, 32)
	if err := x.Announce(victim.Name, host, nil, []core.RuleSpec{core.DropUDPSrcPort(123)}); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Tick(fabric.TickOffers{}, 1); err != nil {
		t.Fatal(err)
	}
	port, _ := x.Fabric.PortByName(victim.Name)
	if port.RuleCount() != 1 {
		t.Fatalf("precondition: %d rules", port.RuleCount())
	}
	// Session loss.
	if _, err := x.RS.HandleWithdrawAll(victim.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Tick(fabric.TickOffers{}, 1); err != nil {
		t.Fatal(err)
	}
	if port.RuleCount() != 0 {
		t.Fatalf("rules after session loss: %d", port.RuleCount())
	}
	if x.Community.RIBLen() != 0 {
		t.Fatal("signaling-channel RIB not cleared")
	}
	if got := len(x.Mitigations.Active()); got != 0 {
		t.Fatalf("live mitigations after session loss: %d", got)
	}
}

// portState renders a port's installed rules content-wise (IDs
// excluded), for cross-path equivalence comparisons.
func portState(t *testing.T, x *IXP, member string) string {
	t.Helper()
	port, err := x.Fabric.PortByName(member)
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, r := range port.Rules() {
		rows = append(rows, fmt.Sprintf("%s -> %v@%g", r.Match, r.Action, r.ShapeRateBps))
	}
	return strings.Join(rows, "\n")
}

// TestAnnounceFacadeEquivalence pins the deprecated Announce(specs)
// façade against the declarative API: signaling a rule spec through a
// BGP announcement and requesting the equivalent mitctl.Spec directly
// must produce identical installed state, identical mitigation IDs and
// identical tick behavior.
func TestAnnounceFacadeEquivalence(t *testing.T) {
	buildOne := func() (*IXP, []*member.Member) { return buildTestIXP(t, 8, 0.0, true) }
	runTicks := func(x *IXP, victim *member.Member) fabric.TickResult {
		rng := stats.NewRand(7)
		attack := traffic.NewAttack(traffic.VectorNTP, victimAddr(victim), PeersOf([]*member.Member{victim}), 1e9, 0, 100, rng)
		attack.RampTicks = 0
		offers := attack.Offers(1, 1)
		reports, err := x.Tick(fabric.TickOffers{victim.Name: offers}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return reports[victim.Name].Result
	}

	// Path A: the legacy BGP façade.
	xa, membersA := buildOne()
	victimA := membersA[0]
	hostA := netip.PrefixFrom(victimAddr(victimA), 32)
	if err := xa.Announce(victimA.Name, hostA, nil, []core.RuleSpec{core.DropUDPSrcPort(123)}); err != nil {
		t.Fatal(err)
	}
	resA := runTicks(xa, victimA)

	// Path B: the declarative API with the compiled spec.
	xb, membersB := buildOne()
	victimB := membersB[0]
	hostB := netip.PrefixFrom(victimAddr(victimB), 32)
	spec, err := mitctl.SpecFromSignal(victimB.Name, hostB, core.DropUDPSrcPort(123), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.Channel = mitctl.ChannelAPI // provenance differs; identity must not
	if _, err := xb.RequestMitigation(spec); err != nil {
		t.Fatal(err)
	}
	resB := runTicks(xb, victimB)

	if sa, sb := portState(t, xa, victimA.Name), portState(t, xb, victimB.Name); sa != sb || sa == "" {
		t.Fatalf("installed state diverges:\nfacade:\n%s\napi:\n%s", sa, sb)
	}
	idsA, idsB := xa.Mitigations.Active(), xb.Mitigations.Active()
	if len(idsA) != 1 || len(idsB) != 1 || idsA[0].ID != idsB[0].ID {
		t.Fatalf("mitigation IDs diverge: %+v vs %+v", idsA, idsB)
	}
	if idsA[0].Channel == idsB[0].Channel {
		t.Fatalf("channels should differ (provenance): %v vs %v", idsA[0].Channel, idsB[0].Channel)
	}
	if resA.RuleDroppedBytes != resB.RuleDroppedBytes || resA.DeliveredBytes != resB.DeliveredBytes {
		t.Fatalf("tick results diverge: %+v vs %+v", resA, resB)
	}
	if resA.RuleDroppedBytes == 0 {
		t.Fatal("mitigation had no effect")
	}

	// Cross-path withdrawal: the API can withdraw what BGP requested.
	if err := xa.WithdrawMitigation(idsA[0].ID, victimA.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := xa.Tick(fabric.TickOffers{}, 1); err != nil {
		t.Fatal(err)
	}
	if got := portState(t, xa, victimA.Name); got != "" {
		t.Fatalf("rules after cross-path withdraw:\n%s", got)
	}
}

// TestMitigationTTLFromTickLoop verifies the TTL clock is driven by the
// simulation tick loop end to end: a TTL'd API request installs, lives
// for its lifetime, and is removed by a later tick with no explicit
// withdrawal.
func TestMitigationTTLFromTickLoop(t *testing.T) {
	x, members := buildTestIXP(t, 4, 0.0, true)
	victim := members[0]
	host := netip.PrefixFrom(victimAddr(victim), 32)
	spec, err := mitctl.SpecFromSignal(victim.Name, host, core.DropUDPSrcPort(123), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.TTL = 3
	m, err := x.RequestMitigation(spec)
	if err != nil {
		t.Fatal(err)
	}
	tick := func() {
		if _, err := x.Tick(fabric.TickOffers{}, 1); err != nil {
			t.Fatal(err)
		}
	}
	tick() // t=1: installed
	port, _ := x.Fabric.PortByName(victim.Name)
	if port.RuleCount() != 1 {
		t.Fatalf("rules at t=1: %d", port.RuleCount())
	}
	// The looking glass lists it with its remaining TTL.
	glass := x.RS.GlassMitigations()
	if !strings.Contains(glass, m.ID) || !strings.Contains(glass, "owner "+victim.Name) {
		t.Fatalf("looking glass:\n%s", glass)
	}
	tick() // t=2
	if got, _ := x.Mitigations.Get(m.ID); got.State != mitctl.StateActive {
		t.Fatalf("state at t=2: %v", got.State)
	}
	tick() // t=3: TTL deadline — expiry and removal ride this tick
	if got, _ := x.Mitigations.Get(m.ID); got.State != mitctl.StateExpired {
		t.Fatalf("state at t=3: %v", got.State)
	}
	if port.RuleCount() != 0 {
		t.Fatalf("rules at t=3: %d", port.RuleCount())
	}
}

func TestScenarioMonitorRecordsFlows(t *testing.T) {
	x, members := buildTestIXP(t, 8, 0.0, false)
	victim := members[0]
	target := victimAddr(victim)
	rng := stats.NewRand(4)
	attack := traffic.NewAttack(traffic.VectorNTP, target, PeersOf(members[1:]), 5e8, 0, 20, rng)
	attack.RampTicks = 0
	sc := &Scenario{IXP: x, VictimPort: victim.Name, Ticks: 10, Sources: []Source{attack}}
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The monitor saw every delivered flow: UDP/123 dominates the
	// source-port histogram and the per-bin series matches the samples.
	top := sc.Monitor.TopSrcPorts(1)
	if len(top) == 0 || top[0].Port != 123 {
		t.Fatalf("top ports: %+v", top)
	}
	if got := sc.Monitor.PeerCount(5, 0); got != samples[5].ActivePeers {
		t.Fatalf("monitor peers %d != sample peers %d", got, samples[5].ActivePeers)
	}
	bins, bytes := sc.Monitor.Series()
	if len(bins) != 10 {
		t.Fatalf("bins: %d", len(bins))
	}
	wantBytes := samples[3].DeliveredBps / 8
	if math.Abs(bytes[3]-wantBytes) > wantBytes*1e-6 {
		t.Fatalf("series[3] = %v, want %v", bytes[3], wantBytes)
	}
}
