package ixp

import (
	"fmt"
	"net/netip"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// serialRunAll is the legacy serial tick loop — the pre-engine
// Scenario.RunAll, preserved verbatim as the determinism oracle: per
// tick, events fire, every victim's offers generate, then one
// synchronous x.TickStream call advances the clock, processes the
// control plane and egresses, with every stage finishing before the
// next tick starts. The pipelined engine must reproduce its output
// byte for byte.
func serialRunAll(x *IXP, ticks int, dt float64, victims []Victim, globalEvents []Event) ([]VictimSeries, error) {
	type timedEvent struct {
		Event
		seq int
	}
	var events []timedEvent
	for _, e := range globalEvents {
		events = append(events, timedEvent{Event: e, seq: len(events)})
	}
	for i := range victims {
		for _, e := range victims[i].Events {
			events = append(events, timedEvent{Event: e, seq: len(events)})
		}
	}
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && (events[j-1].Tick > events[j].Tick ||
			(events[j-1].Tick == events[j].Tick && events[j-1].seq > events[j].seq)); j-- {
			events[j-1], events[j] = events[j], events[j-1]
		}
	}

	series := make([]VictimSeries, len(victims))
	for i := range victims {
		if victims[i].Monitor == nil {
			victims[i].Monitor = flowmon.NewCollector()
		}
		if victims[i].PeerMinBps == 0 {
			victims[i].PeerMinBps = 1e3
		}
		series[i] = VictimSeries{Port: victims[i].Port, Monitor: victims[i].Monitor}
	}

	bufs := make([][]fabric.Offer, len(victims))
	offers := make(fabric.TickOffers, len(victims))
	curTick := new(int)
	visitorCache := make([][]fabric.FlowVisitor, len(victims))
	victimIndex := make(map[string]int, len(victims))
	for i := range victims {
		visitorCache[i] = make([]fabric.FlowVisitor, victims[i].Monitor.Shards())
		victimIndex[victims[i].Port] = i
	}
	sink := func(worker int, port string) fabric.FlowVisitor {
		vi, ok := victimIndex[port]
		if !ok {
			return nil
		}
		row := visitorCache[vi]
		slot := worker % len(row)
		if row[slot] == nil {
			sh := victims[vi].Monitor.Shard(worker)
			row[slot] = func(flow netpkt.FlowKey, _ uint64, bytes float64) {
				sh.ObserveFlow(*curTick, flow, bytes)
			}
		}
		return row[slot]
	}
	isMember := func(mac netpkt.MAC) bool {
		_, ok := x.byMAC[mac]
		return ok
	}

	ei := 0
	for tick := 0; tick < ticks; tick++ {
		*curTick = tick
		for ei < len(events) && events[ei].Tick == tick {
			if err := events[ei].Do(x); err != nil {
				return series, fmt.Errorf("ixp: event %q at tick %d: %w", events[ei].Name, tick, err)
			}
			ei++
		}
		for i := range victims {
			buf := bufs[i][:0]
			for _, src := range victims[i].Sources {
				if ap, ok := src.(OfferAppender); ok {
					buf = ap.AppendOffers(buf, tick, dt)
				} else {
					buf = append(buf, src.Offers(tick, dt)...)
				}
			}
			bufs[i] = buf
			offers[victims[i].Port] = buf
		}
		reports, err := x.TickStream(offers, dt, sink)
		if err != nil {
			return series, err
		}
		for i := range victims {
			rep := reports[victims[i].Port]
			series[i].Samples = append(series[i].Samples, Sample{
				Tick:                 tick,
				Time:                 float64(tick) * dt,
				OfferedBps:           rep.OfferedBytes * 8 / dt,
				DeliveredBps:         rep.Result.DeliveredBytes * 8 / dt,
				NulledBps:            rep.NulledBytes * 8 / dt,
				RuleDroppedBps:       rep.Result.RuleDroppedBytes * 8 / dt,
				ShaperDroppedBps:     rep.Result.ShaperDroppedBytes * 8 / dt,
				CongestionDroppedBps: rep.Result.CongestionDroppedBytes * 8 / dt,
				ActivePeers:          victims[i].Monitor.PeerCountFunc(tick, victims[i].PeerMinBps*dt/8, isMember),
			})
		}
	}
	return series, nil
}

// TestEngineMatchesSerialLoop pins the pipelined engine (the live
// Scenario.RunAll) to the legacy serial loop, byte for byte: every
// sample field — delivered, nulled, rule-dropped, shaper-dropped,
// congestion-dropped rates and the active-peer count — and the
// monitors' full per-bin series must be identical. Run with -race this
// also exercises the overlap of tick N's fold with tick N+1's egress.
func TestEngineMatchesSerialLoop(t *testing.T) {
	const nVictims, ticks = 3, 60
	build := func() (*IXP, []Victim) {
		x, members := buildTestIXP(t, 24, 1.0, true)
		victims := make([]Victim, nVictims)
		for v := 0; v < nVictims; v++ {
			rng := stats.NewRand(uint64(200 + v))
			target := victimAddr(members[v])
			peers := PeersOf(members[nVictims:])
			attack := traffic.NewAttack(traffic.VectorNTP, target, peers,
				float64(v+1)*5e8, 2, ticks-5, rng)
			web := traffic.NewWebService(target, peers[:5], 1e8, rng)
			victims[v] = Victim{Port: members[v].Name, Sources: []Source{attack, web}}
		}
		// Victim 0: classic RTBH on the /32 at tick 20.
		host0 := netip.PrefixFrom(victimAddr(members[0]), 32)
		name0 := members[0].Name
		victims[0].Events = []Event{
			{Tick: 5, Name: "announce covering prefix", Do: func(ix *IXP) error {
				return ix.Announce(name0, members[0].Prefixes[0], nil, nil)
			}},
			{Tick: 20, Name: "RTBH /32", Do: func(ix *IXP) error {
				return ix.Announce(name0, host0, []bgp.Community{bgp.CommunityBlackhole}, nil)
			}},
		}
		// Victim 1: Stellar shape then escalate to drop — exercises the
		// mitigation queue, whose pacing depends on the control clock.
		host1 := netip.PrefixFrom(victimAddr(members[1]), 32)
		name1 := members[1].Name
		victims[1].Events = []Event{
			{Tick: 8, Name: "announce covering prefix", Do: func(ix *IXP) error {
				return ix.Announce(name1, members[1].Prefixes[0], nil, nil)
			}},
			{Tick: 25, Name: "shape NTP", Do: func(ix *IXP) error {
				return ix.Announce(name1, host1, nil, []core.RuleSpec{core.ShapeUDPSrcPort(123, 1e8)})
			}},
			{Tick: 40, Name: "drop UDP", Do: func(ix *IXP) error {
				return ix.Announce(name1, host1, nil, []core.RuleSpec{core.DropProto(netpkt.ProtoUDP)})
			}},
		}
		return x, victims
	}

	xs, victimsS := build()
	serialSeries, err := serialRunAll(xs, ticks, 1, victimsS, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Depth 1 is the fully serial pipeline; 2 the default double buffer;
	// 4 and 8 run the parallel fold with multiple in-flight fold ticks.
	// Workers is pinned above 1 so the per-victim fold fan-out engages
	// even on a single-CPU host.
	for _, depth := range []int{1, 2, 4, 8} {
		depth := depth
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			xe, victimsE := build()
			engineSeries, err := (&Scenario{IXP: xe, Ticks: ticks, Dt: 1, Victims: victimsE, Depth: depth, Workers: 4}).RunAll()
			if err != nil {
				t.Fatal(err)
			}

			if len(engineSeries) != len(serialSeries) {
				t.Fatalf("series: %d vs %d", len(engineSeries), len(serialSeries))
			}
			for v := range serialSeries {
				got, want := engineSeries[v].Samples, serialSeries[v].Samples
				if len(got) != len(want) {
					t.Fatalf("victim %d: %d vs %d samples", v, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("victim %d tick %d:\nengine %+v\nserial %+v", v, i, got[i], want[i])
					}
				}
				gb, gv := engineSeries[v].Monitor.Series()
				wb, wv := serialSeries[v].Monitor.Series()
				if fmt.Sprint(gb) != fmt.Sprint(wb) || fmt.Sprint(gv) != fmt.Sprint(wv) {
					t.Fatalf("victim %d: monitor series diverged\nengine %v %v\nserial %v %v", v, gb, gv, wb, wv)
				}
				if fmt.Sprint(engineSeries[v].Monitor.TopSrcPorts(4)) != fmt.Sprint(serialSeries[v].Monitor.TopSrcPorts(4)) {
					t.Fatalf("victim %d: top ports diverged", v)
				}
			}

			// The mitigation controllers converged to the same state too.
			if ge, gs := xe.Mitigations.AppliedChanges(), xs.Mitigations.AppliedChanges(); ge != gs {
				t.Fatalf("applied changes: engine %d, serial %d", ge, gs)
			}
		})
	}
}
