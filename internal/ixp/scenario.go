package ixp

import (
	"fmt"
	"net/netip"

	"stellar/internal/engine"
	"stellar/internal/flowmon"
)

// Source produces flow-level offers per tick (attacks, benign services,
// trace replay). It is the engine's source contract under its
// historical ixp name.
type Source = engine.Source

// OfferAppender is an optional Source refinement: sources that can
// append their per-tick offers into a caller-owned buffer, costing no
// per-tick slice allocation in steady state.
type OfferAppender = engine.OfferAppender

// Event runs an action at the beginning of a tick — announcing a
// blackhole, escalating a rule, withdrawing a route. Scenario wraps it
// into an engine event bound to the scenario's IXP.
type Event struct {
	Tick int
	Name string
	Do   func(*IXP) error
}

// Sample is one tick of a victim port's time series — the measurements
// plotted in Figures 3(c) and 10(c).
type Sample = engine.Sample

// Victim is one monitored victim port of a multi-victim scenario: its
// own traffic sources, timed events and measurement pipeline.
type Victim struct {
	// Port names the victim's fabric port.
	Port string
	// Sources feed this victim's port each tick.
	Sources []Source
	// Events fire at the start of their tick (see Scenario.Run for the
	// cross-victim ordering guarantee).
	Events []Event
	// Monitor receives every flow delivered at the port as an
	// IPFIX-style record (bin = tick), streamed from the egress workers
	// into per-worker shards. Run creates one when nil. ActivePeers in
	// this victim's samples is the monitor's per-tick peer count
	// restricted to registered member MACs, so a monitor with
	// SampleEvery > 1 counts peers over the sampled records only.
	Monitor *flowmon.Collector
	// PeerMinBps overrides the scenario-wide active-peer threshold for
	// this victim (0 inherits Scenario.PeerMinBps).
	PeerMinBps float64
}

// VictimSeries is one victim's result: its per-tick samples and the
// monitor that collected its delivered flows.
type VictimSeries = engine.VictimSeries

// Scenario drives an IXP through a timed experiment against one or more
// victim ports concurrently. It is a thin façade over the engine
// stage-graph runtime (internal/engine): victims become a
// SourcesDriver, the IXP supplies the control and data planes, and the
// run executes as a double-buffered pipeline — tick N's monitoring
// overlaps tick N+1's traffic generation and egress — whose output is
// byte-identical to the serial ixp.Tick loop (pinned by tests). All
// victims advance in lockstep on the shared fabric tick: per tick,
// every due event fires, then all victims' offers egress in one
// parallel fabric pass whose delivered flows stream straight into each
// victim's monitor shards.
//
// Either populate Victims (the multi-victim form) or the legacy
// single-victim fields (VictimPort/Sources/Events/Monitor) — not both.
type Scenario struct {
	IXP   *IXP
	Ticks int
	Dt    float64
	// PeerMinBps is the delivered-rate threshold for counting a peer as
	// active (defaults to 1 kbps).
	PeerMinBps float64
	// Depth is the engine's in-flight tick bound (0: engine default).
	// Runs are byte-identical at every depth; deeper runs overlap more
	// fold work across ticks.
	Depth int
	// Workers sizes the engine's worker pool (0: GOMAXPROCS).
	Workers int

	// Victims are the monitored victim ports. Scenario-level Events
	// apply to the whole IXP and order before per-victim events within
	// the same tick.
	Victims []Victim
	Events  []Event

	// Legacy single-victim fields; Run mirrors them onto a one-element
	// Victims list and exposes the created collector via Monitor.
	VictimPort string
	Sources    []Source
	Monitor    *flowmon.Collector
}

// Run executes the scenario and returns the first victim's per-tick
// samples — the single-victim view every figure driver uses. On an
// event error it returns the samples of the ticks completed before the
// failing event, alongside the error. Multi-victim callers use RunAll.
func (s *Scenario) Run() ([]Sample, error) {
	series, err := s.RunAll()
	if len(series) == 0 {
		return nil, err
	}
	s.Monitor = series[0].Monitor
	return series[0].Samples, err
}

// RunAll executes the scenario and returns one series per victim, in
// Victims order. On an event error it returns the series of all ticks
// completed before the failing event (partial samples), alongside the
// error. Events of the same tick apply in insertion order — scenario
// events first, then per-victim events in victim order — exactly as the
// serial loop applied them.
func (s *Scenario) RunAll() ([]VictimSeries, error) {
	if s.Dt == 0 {
		s.Dt = 1
	}
	victims := append([]Victim(nil), s.Victims...)
	var globalEvents []Event
	if len(victims) == 0 {
		if s.VictimPort == "" {
			return nil, fmt.Errorf("ixp: scenario has no victim (set Victims or VictimPort)")
		}
		victims = []Victim{{Port: s.VictimPort, Sources: s.Sources, Events: s.Events, Monitor: s.Monitor}}
	} else {
		if s.VictimPort != "" || len(s.Sources) > 0 || s.Monitor != nil {
			return nil, fmt.Errorf("ixp: scenario mixes Victims with legacy single-victim fields")
		}
		globalEvents = s.Events
	}

	seen := make(map[string]bool, len(victims))
	specs := make([]engine.VictimSpec, len(victims))
	sources := make([][]Source, len(victims))
	for i := range victims {
		v := &victims[i]
		if _, err := s.IXP.Fabric.PortByName(v.Port); err != nil {
			return nil, fmt.Errorf("ixp: victim port: %w", err)
		}
		if seen[v.Port] {
			return nil, fmt.Errorf("ixp: duplicate victim port %s", v.Port)
		}
		seen[v.Port] = true
		specs[i] = engine.VictimSpec{Port: v.Port, Monitor: v.Monitor, PeerMinBps: v.PeerMinBps}
		sources[i] = v.Sources
	}

	// The event timeline: scenario-level events first, then per-victim
	// events in victim order, wrapped to bind the scenario's IXP. The
	// engine applies same-tick events in this insertion order.
	var events []engine.Event
	appendEvents := func(evs []Event) {
		for _, e := range evs {
			ev, ix := e, s.IXP
			events = append(events, engine.Event{Tick: ev.Tick, Name: ev.Name, Do: func() error {
				return ev.Do(ix)
			}})
		}
	}
	appendEvents(globalEvents)
	for i := range victims {
		appendEvents(victims[i].Events)
	}

	// Active peers count only MACs registered to IXP members, exactly as
	// the pre-streaming map-based ActivePeers did; stray source MACs in
	// the monitor do not inflate the series.
	eng := engine.New(engine.Config{
		Driver:       engine.NewSourcesDriver(specs, sources),
		Control:      s.IXP,
		DataPlane:    s.IXP,
		Events:       events,
		Ticks:        s.Ticks,
		Dt:           s.Dt,
		PeerMinBps:   s.PeerMinBps,
		MemberFilter: s.IXP.MemberFilter(),
		Depth:        s.Depth,
		Workers:      s.Workers,
	})
	return eng.Run()
}

// MeanDeliveredBps averages delivered rate over [from, to) ticks.
func MeanDeliveredBps(samples []Sample, from, to int) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.Tick >= from && s.Tick < to {
			sum += s.DeliveredBps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanActivePeers averages the peer count over [from, to) ticks.
func MeanActivePeers(samples []Sample, from, to int) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.Tick >= from && s.Tick < to {
			sum += float64(s.ActivePeers)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// VictimOwner finds the member owning the address (by registered
// prefix) — the destination port for attack traffic.
func (x *IXP) VictimOwner(addr netip.Addr) (string, error) {
	for name, m := range x.members {
		for _, p := range m.Prefixes {
			if p.Contains(addr) {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("ixp: no member owns %s", addr)
}
