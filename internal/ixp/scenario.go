package ixp

import (
	"fmt"
	"net/netip"
	"sort"

	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/netpkt"
)

// Source produces flow-level offers per tick (attacks, benign services).
type Source interface {
	Offers(tick int, dtSeconds float64) []fabric.Offer
}

// OfferAppender is an optional Source refinement: sources that can
// append their per-tick offers into a caller-owned buffer. The scenario
// engine reuses one buffer per victim across ticks, so appending
// sources cost no per-tick slice allocation in steady state.
type OfferAppender interface {
	AppendOffers(dst []fabric.Offer, tick int, dtSeconds float64) []fabric.Offer
}

// Event runs an action at the beginning of a tick — announcing a
// blackhole, escalating a rule, withdrawing a route.
type Event struct {
	Tick int
	Name string
	Do   func(*IXP) error
}

// Sample is one tick of a victim port's time series — the measurements
// plotted in Figures 3(c) and 10(c).
type Sample struct {
	Tick                 int
	Time                 float64
	OfferedBps           float64
	DeliveredBps         float64
	NulledBps            float64 // RTBH null-routed at the IXP
	RuleDroppedBps       float64 // Stellar drop queue
	ShaperDroppedBps     float64 // Stellar shaping queue excess
	CongestionDroppedBps float64 // victim port overload
	ActivePeers          int
}

// Victim is one monitored victim port of a multi-victim scenario: its
// own traffic sources, timed events and measurement pipeline.
type Victim struct {
	// Port names the victim's fabric port.
	Port string
	// Sources feed this victim's port each tick.
	Sources []Source
	// Events fire at the start of their tick (see Scenario.Run for the
	// cross-victim ordering guarantee).
	Events []Event
	// Monitor receives every flow delivered at the port as an
	// IPFIX-style record (bin = tick), streamed from the egress workers
	// into per-worker shards. Run creates one when nil. ActivePeers in
	// this victim's samples is the monitor's per-tick peer count
	// restricted to registered member MACs, so a monitor with
	// SampleEvery > 1 counts peers over the sampled records only.
	Monitor *flowmon.Collector
	// PeerMinBps overrides the scenario-wide active-peer threshold for
	// this victim (0 inherits Scenario.PeerMinBps).
	PeerMinBps float64
}

// VictimSeries is one victim's result: its per-tick samples and the
// monitor that collected its delivered flows.
type VictimSeries struct {
	Port    string
	Samples []Sample
	Monitor *flowmon.Collector
}

// Scenario drives an IXP through a timed experiment against one or more
// victim ports concurrently. All victims advance in lockstep on the
// shared fabric tick: per tick, every due event fires, then all victims'
// offers egress in one parallel fabric pass whose delivered flows
// stream straight into each victim's monitor shards.
//
// Either populate Victims (the multi-victim form) or the legacy
// single-victim fields (VictimPort/Sources/Events/Monitor) — not both.
type Scenario struct {
	IXP   *IXP
	Ticks int
	Dt    float64
	// PeerMinBps is the delivered-rate threshold for counting a peer as
	// active (defaults to 1 kbps).
	PeerMinBps float64

	// Victims are the monitored victim ports. Scenario-level Events
	// apply to the whole IXP and order before per-victim events within
	// the same tick.
	Victims []Victim
	Events  []Event

	// Legacy single-victim fields; Run mirrors them onto a one-element
	// Victims list and exposes the created collector via Monitor.
	VictimPort string
	Sources    []Source
	Monitor    *flowmon.Collector
}

// Run executes the scenario and returns the first victim's per-tick
// samples — the single-victim view every figure driver uses. On an
// event error it returns the samples of the ticks completed before the
// failing event, alongside the error. Multi-victim callers use RunAll.
func (s *Scenario) Run() ([]Sample, error) {
	series, err := s.RunAll()
	if len(series) == 0 {
		return nil, err
	}
	s.Monitor = series[0].Monitor
	return series[0].Samples, err
}

// timedEvent is one event with its global application order: events of
// the same tick apply in (scenario events, victim 0 events, victim 1
// events, ...) order, each group in insertion order — deterministic
// even when the same tick appears multiple times, out of order, across
// lists.
type timedEvent struct {
	Event
	seq int
}

// RunAll executes the scenario and returns one series per victim, in
// Victims order. On an event error it returns the series of all ticks
// completed before the failing event (partial samples), alongside the
// error.
func (s *Scenario) RunAll() ([]VictimSeries, error) {
	if s.Dt == 0 {
		s.Dt = 1
	}
	if s.PeerMinBps == 0 {
		s.PeerMinBps = 1e3
	}
	victims := append([]Victim(nil), s.Victims...)
	var globalEvents []Event
	if len(victims) == 0 {
		if s.VictimPort == "" {
			return nil, fmt.Errorf("ixp: scenario has no victim (set Victims or VictimPort)")
		}
		victims = []Victim{{Port: s.VictimPort, Sources: s.Sources, Events: s.Events, Monitor: s.Monitor}}
	} else {
		if s.VictimPort != "" || len(s.Sources) > 0 || s.Monitor != nil {
			return nil, fmt.Errorf("ixp: scenario mixes Victims with legacy single-victim fields")
		}
		globalEvents = s.Events
	}

	seen := make(map[string]bool, len(victims))
	for i := range victims {
		v := &victims[i]
		if _, err := s.IXP.Fabric.PortByName(v.Port); err != nil {
			return nil, fmt.Errorf("ixp: victim port: %w", err)
		}
		if seen[v.Port] {
			return nil, fmt.Errorf("ixp: duplicate victim port %s", v.Port)
		}
		seen[v.Port] = true
		if v.Monitor == nil {
			v.Monitor = flowmon.NewCollector()
		}
		if v.PeerMinBps == 0 {
			v.PeerMinBps = s.PeerMinBps
		}
	}

	// Merge the event lists into one deterministically ordered timeline.
	var events []timedEvent
	for _, e := range globalEvents {
		events = append(events, timedEvent{Event: e, seq: len(events)})
	}
	for i := range victims {
		for _, e := range victims[i].Events {
			events = append(events, timedEvent{Event: e, seq: len(events)})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Tick != events[j].Tick {
			return events[i].Tick < events[j].Tick
		}
		return events[i].seq < events[j].seq
	})

	series := make([]VictimSeries, len(victims))
	for i := range victims {
		series[i] = VictimSeries{
			Port:    victims[i].Port,
			Samples: make([]Sample, 0, s.Ticks),
			Monitor: victims[i].Monitor,
		}
	}

	// Per-victim offer buffers and the offers map are reused across
	// ticks; sources implementing OfferAppender emit straight into the
	// buffers, so the steady-state tick allocates no fresh slices.
	bufs := make([][]fabric.Offer, len(victims))
	offers := make(fabric.TickOffers, len(victims))

	// The per-(victim, worker) visitors are built once and reused every
	// tick: each closure binds one monitor shard and reads the current
	// tick through curTick. Workers only read curTick while the main
	// goroutine is blocked inside TickStream, and a (victim, worker)
	// cache slot is only touched by one worker per tick, so the cache is
	// race-free across the tick barrier.
	curTick := new(int)
	visitorCache := make([][]fabric.FlowVisitor, len(victims))
	victimIndex := make(map[string]int, len(victims))
	for i := range victims {
		visitorCache[i] = make([]fabric.FlowVisitor, victims[i].Monitor.Shards())
		victimIndex[victims[i].Port] = i
	}
	mkVisitor := func(vi, worker int) fabric.FlowVisitor {
		sh := victims[vi].Monitor.Shard(worker)
		return func(flow netpkt.FlowKey, _ uint64, bytes float64) {
			sh.ObserveFlow(*curTick, flow, bytes)
		}
	}
	sink := func(worker int, port string) fabric.FlowVisitor {
		vi, ok := victimIndex[port]
		if !ok {
			return nil
		}
		row := visitorCache[vi]
		slot := worker % len(row) // Shard wraps the same way
		if row[slot] == nil {
			row[slot] = mkVisitor(vi, worker)
		}
		return row[slot]
	}

	// Active peers count only MACs registered to IXP members, exactly as
	// the pre-streaming map-based ActivePeers did; stray source MACs in
	// the monitor do not inflate the series.
	isMember := func(mac netpkt.MAC) bool {
		_, ok := s.IXP.byMAC[mac]
		return ok
	}

	ei := 0
	for tick := 0; tick < s.Ticks; tick++ {
		*curTick = tick
		for ei < len(events) && events[ei].Tick == tick {
			if err := events[ei].Do(s.IXP); err != nil {
				return series, fmt.Errorf("ixp: event %q at tick %d: %w", events[ei].Name, tick, err)
			}
			ei++
		}
		for i := range victims {
			buf := bufs[i][:0]
			for _, src := range victims[i].Sources {
				if ap, ok := src.(OfferAppender); ok {
					buf = ap.AppendOffers(buf, tick, s.Dt)
				} else {
					buf = append(buf, src.Offers(tick, s.Dt)...)
				}
			}
			bufs[i] = buf
			offers[victims[i].Port] = buf
		}
		reports, err := s.IXP.TickStream(offers, s.Dt, sink)
		if err != nil {
			return series, err
		}
		for i := range victims {
			rep := reports[victims[i].Port]
			series[i].Samples = append(series[i].Samples, Sample{
				Tick:                 tick,
				Time:                 float64(tick) * s.Dt,
				OfferedBps:           rep.OfferedBytes * 8 / s.Dt,
				DeliveredBps:         rep.Result.DeliveredBytes * 8 / s.Dt,
				NulledBps:            rep.NulledBytes * 8 / s.Dt,
				RuleDroppedBps:       rep.Result.RuleDroppedBytes * 8 / s.Dt,
				ShaperDroppedBps:     rep.Result.ShaperDroppedBytes * 8 / s.Dt,
				CongestionDroppedBps: rep.Result.CongestionDroppedBytes * 8 / s.Dt,
				ActivePeers:          victims[i].Monitor.PeerCountFunc(tick, victims[i].PeerMinBps*s.Dt/8, isMember),
			})
		}
	}
	return series, nil
}

// MeanDeliveredBps averages delivered rate over [from, to) ticks.
func MeanDeliveredBps(samples []Sample, from, to int) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.Tick >= from && s.Tick < to {
			sum += s.DeliveredBps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanActivePeers averages the peer count over [from, to) ticks.
func MeanActivePeers(samples []Sample, from, to int) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.Tick >= from && s.Tick < to {
			sum += float64(s.ActivePeers)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// VictimOwner finds the member owning the address (by registered
// prefix) — the destination port for attack traffic.
func (x *IXP) VictimOwner(addr netip.Addr) (string, error) {
	for name, m := range x.members {
		for _, p := range m.Prefixes {
			if p.Contains(addr) {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("ixp: no member owns %s", addr)
}
