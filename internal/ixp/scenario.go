package ixp

import (
	"fmt"
	"net/netip"
	"sort"

	"stellar/internal/fabric"
	"stellar/internal/flowmon"
)

// Source produces flow-level offers per tick (attacks, benign services).
type Source interface {
	Offers(tick int, dtSeconds float64) []fabric.Offer
}

// Event runs an action at the beginning of a tick — announcing a
// blackhole, escalating a rule, withdrawing a route.
type Event struct {
	Tick int
	Name string
	Do   func(*IXP) error
}

// Sample is one tick of the scenario's victim-port time series — the
// measurements plotted in Figures 3(c) and 10(c).
type Sample struct {
	Tick                 int
	Time                 float64
	OfferedBps           float64
	DeliveredBps         float64
	NulledBps            float64 // RTBH null-routed at the IXP
	RuleDroppedBps       float64 // Stellar drop queue
	ShaperDroppedBps     float64 // Stellar shaping queue excess
	CongestionDroppedBps float64 // victim port overload
	ActivePeers          int
}

// Scenario drives an IXP through a timed experiment against one victim
// port.
type Scenario struct {
	IXP        *IXP
	VictimPort string
	Ticks      int
	Dt         float64
	Sources    []Source
	Events     []Event
	// PeerMinBps is the delivered-rate threshold for counting a peer as
	// active (defaults to 1 kbps).
	PeerMinBps float64
	// Monitor receives every delivered flow as an IPFIX-style record
	// (bin = tick). Run creates one when nil; it is the measurement
	// pipeline behind the per-port and per-peer series.
	Monitor *flowmon.Collector
}

// Run executes the scenario and returns the per-tick samples.
func (s *Scenario) Run() ([]Sample, error) {
	if s.Dt == 0 {
		s.Dt = 1
	}
	if s.PeerMinBps == 0 {
		s.PeerMinBps = 1e3
	}
	if _, err := s.IXP.Fabric.PortByName(s.VictimPort); err != nil {
		return nil, fmt.Errorf("ixp: victim port: %w", err)
	}
	if s.Monitor == nil {
		s.Monitor = flowmon.NewCollector()
	}
	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })

	samples := make([]Sample, 0, s.Ticks)
	ei := 0
	for tick := 0; tick < s.Ticks; tick++ {
		for ei < len(events) && events[ei].Tick == tick {
			if err := events[ei].Do(s.IXP); err != nil {
				return samples, fmt.Errorf("ixp: event %q at tick %d: %w", events[ei].Name, tick, err)
			}
			ei++
		}
		var offers []fabric.Offer
		for _, src := range s.Sources {
			offers = append(offers, src.Offers(tick, s.Dt)...)
		}
		reports, err := s.IXP.Tick(fabric.TickOffers{s.VictimPort: offers}, s.Dt)
		if err != nil {
			return samples, err
		}
		rep := reports[s.VictimPort]
		for flow, bytes := range rep.Result.DeliveredByFlow {
			s.Monitor.Observe(flowmon.Record{Bin: tick, Key: flow, Bytes: bytes})
		}
		samples = append(samples, Sample{
			Tick:                 tick,
			Time:                 float64(tick) * s.Dt,
			OfferedBps:           rep.OfferedBytes * 8 / s.Dt,
			DeliveredBps:         rep.Result.DeliveredBytes * 8 / s.Dt,
			NulledBps:            rep.NulledBytes * 8 / s.Dt,
			RuleDroppedBps:       rep.Result.RuleDroppedBytes * 8 / s.Dt,
			ShaperDroppedBps:     rep.Result.ShaperDroppedBytes * 8 / s.Dt,
			CongestionDroppedBps: rep.Result.CongestionDroppedBytes * 8 / s.Dt,
			ActivePeers:          s.IXP.ActivePeers(rep.Result, s.PeerMinBps*s.Dt/8),
		})
	}
	return samples, nil
}

// MeanDeliveredBps averages delivered rate over [from, to) ticks.
func MeanDeliveredBps(samples []Sample, from, to int) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.Tick >= from && s.Tick < to {
			sum += s.DeliveredBps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanActivePeers averages the peer count over [from, to) ticks.
func MeanActivePeers(samples []Sample, from, to int) float64 {
	var sum float64
	n := 0
	for _, s := range samples {
		if s.Tick >= from && s.Tick < to {
			sum += float64(s.ActivePeers)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// VictimOwner finds the member owning the address (by registered
// prefix) — the destination port for attack traffic.
func (x *IXP) VictimOwner(addr netip.Addr) (string, error) {
	for name, m := range x.members {
		for _, p := range m.Prefixes {
			if p.Contains(addr) {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("ixp: no member owns %s", addr)
}
