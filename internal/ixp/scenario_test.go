package ixp

import (
	"fmt"
	"net/netip"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

// TestScenarioMultiVictimMatchesSingleRuns pins the multi-victim engine
// to N independent single-victim runs: with uncoupled ports (no
// platform cap, no cross-victim rules) the per-victim series must be
// identical either way.
func TestScenarioMultiVictimMatchesSingleRuns(t *testing.T) {
	const nVictims = 3
	build := func() (*IXP, []Victim) {
		x, members := buildTestIXP(t, 24, 0.0, false)
		victims := make([]Victim, nVictims)
		for v := 0; v < nVictims; v++ {
			rng := stats.NewRand(uint64(100 + v))
			target := victimAddr(members[v])
			peers := PeersOf(members[nVictims:])
			attack := traffic.NewAttack(traffic.VectorNTP, target, peers,
				float64(v+1)*4e8, 2+v, 25, rng)
			web := traffic.NewWebService(target, peers[:4], 1e8, rng)
			victims[v] = Victim{Port: members[v].Name, Sources: []Source{attack, web}}
		}
		return x, victims
	}

	x, victims := build()
	multi := &Scenario{IXP: x, Ticks: 30, Dt: 1, Victims: victims}
	multiSeries, err := multi.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(multiSeries) != nVictims {
		t.Fatalf("series: %d", len(multiSeries))
	}

	for v := 0; v < nVictims; v++ {
		x2, victims2 := build()
		single := &Scenario{IXP: x2, Ticks: 30, Dt: 1, Victims: victims2[v : v+1]}
		singleSeries, err := single.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		got, want := multiSeries[v].Samples, singleSeries[0].Samples
		if len(got) != len(want) {
			t.Fatalf("victim %d: %d vs %d samples", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("victim %d tick %d: multi %+v != single %+v", v, i, got[i], want[i])
			}
		}
		// The monitors agree too.
		gm, wm := multiSeries[v].Monitor, singleSeries[0].Monitor
		_, gBytes := gm.Series()
		_, wBytes := wm.Series()
		if fmt.Sprint(gBytes) != fmt.Sprint(wBytes) {
			t.Fatalf("victim %d: monitor series diverged", v)
		}
	}
}

// TestScenarioEventOrderDeterministic pins the satellite fix: events of
// the same tick apply in insertion order — scenario-level events first,
// then per-victim events in victim order — even when the tick values
// are added out of order and duplicated across lists.
func TestScenarioEventOrderDeterministic(t *testing.T) {
	x, members := buildTestIXP(t, 4, 0.0, false)
	var order []string
	mark := func(name string) Event {
		return Event{Tick: 2, Name: name, Do: func(*IXP) error {
			order = append(order, name)
			return nil
		}}
	}
	early := Event{Tick: 1, Name: "early", Do: func(*IXP) error {
		order = append(order, "early")
		return nil
	}}
	sc := &Scenario{
		IXP: x, Ticks: 4, Dt: 1,
		Events: []Event{mark("global-b"), early, mark("global-a")},
		Victims: []Victim{
			{Port: members[0].Name, Events: []Event{mark("v0-b"), mark("v0-a")}},
			{Port: members[1].Name, Events: []Event{mark("v1")}},
		},
	}
	if _, err := sc.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"early", "global-b", "global-a", "v0-b", "v0-a", "v1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("event order: %v, want %v", order, want)
	}
}

// TestScenarioLegacyEventDuplicateTicks covers the single-victim form:
// duplicated same-tick events added out of order still apply in
// insertion order.
func TestScenarioLegacyEventDuplicateTicks(t *testing.T) {
	x, members := buildTestIXP(t, 3, 0.0, false)
	var order []string
	ev := func(tick int, name string) Event {
		return Event{Tick: tick, Name: name, Do: func(*IXP) error {
			order = append(order, name)
			return nil
		}}
	}
	sc := &Scenario{
		IXP: x, VictimPort: members[0].Name, Ticks: 6, Dt: 1,
		Events: []Event{ev(5, "b"), ev(3, "x"), ev(5, "a"), ev(3, "y")},
	}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "y", "b", "a"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("event order: %v, want %v", order, want)
	}
}

// TestScenarioPartialSamplesOnEventError pins the documented contract:
// an event error surfaces alongside the samples of every tick completed
// before the failing event.
func TestScenarioPartialSamplesOnEventError(t *testing.T) {
	x, members := buildTestIXP(t, 4, 0.0, false)
	sc := &Scenario{
		IXP: x, VictimPort: members[0].Name, Ticks: 10, Dt: 1,
		Events: []Event{{Tick: 4, Name: "boom", Do: func(ix *IXP) error {
			return ix.Announce("ghost", members[0].Prefixes[0], nil, nil)
		}}},
	}
	samples, err := sc.Run()
	if err == nil {
		t.Fatal("event error swallowed")
	}
	if len(samples) != 4 {
		t.Fatalf("partial samples: %d, want 4 (ticks before the failing event)", len(samples))
	}
}

// TestScenarioValidation covers the victim-list error paths.
func TestScenarioValidation(t *testing.T) {
	x, members := buildTestIXP(t, 3, 0.0, false)
	if _, err := (&Scenario{IXP: x, Ticks: 1}).RunAll(); err == nil {
		t.Fatal("no-victim scenario accepted")
	}
	dup := &Scenario{IXP: x, Ticks: 1, Victims: []Victim{
		{Port: members[0].Name}, {Port: members[0].Name},
	}}
	if _, err := dup.RunAll(); err == nil {
		t.Fatal("duplicate victim port accepted")
	}
	ghost := &Scenario{IXP: x, Ticks: 1, Victims: []Victim{{Port: "ghost"}}}
	if _, err := ghost.RunAll(); err == nil {
		t.Fatal("unknown victim port accepted")
	}
	mixed := &Scenario{IXP: x, Ticks: 1, VictimPort: members[0].Name,
		Victims: []Victim{{Port: members[1].Name}}}
	if _, err := mixed.RunAll(); err == nil {
		t.Fatal("mixed legacy + Victims accepted")
	}
}

// TestScenarioMultiVictimMitigation runs two victims where only one
// gets a blackhole: RTBH must null the honoring peers' traffic at that
// victim while the other victim's series is untouched.
func TestScenarioMultiVictimMitigation(t *testing.T) {
	x, members := buildTestIXP(t, 12, 1.0, false) // everyone honors RTBH
	va, vb := members[0], members[1]
	peers := PeersOf(members[2:])
	rngA, rngB := stats.NewRand(1), stats.NewRand(2)
	targetA, targetB := victimAddr(va), victimAddr(vb)
	attackA := traffic.NewAttack(traffic.VectorNTP, targetA, peers, 5e8, 0, 40, rngA)
	attackA.RampTicks = 0
	attackB := traffic.NewAttack(traffic.VectorNTP, targetB, peers, 5e8, 0, 40, rngB)
	attackB.RampTicks = 0

	if err := x.Announce(va.Name, va.Prefixes[0], nil, nil); err != nil {
		t.Fatal(err)
	}
	host := netip.PrefixFrom(targetA, 32)
	sc := &Scenario{
		IXP: x, Ticks: 20, Dt: 1,
		Victims: []Victim{
			{Port: va.Name, Sources: []Source{attackA}, Events: []Event{{
				Tick: 10, Name: "blackhole A",
				Do: func(ix *IXP) error {
					return ix.Announce(va.Name, host, []bgp.Community{bgp.CommunityBlackhole}, nil)
				},
			}}},
			{Port: vb.Name, Sources: []Source{attackB}},
		},
	}
	series, err := sc.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	a, b := series[0].Samples, series[1].Samples
	if a[5].DeliveredBps == 0 || a[15].DeliveredBps != 0 {
		t.Fatalf("victim A: pre %v post %v (blackhole must kill all honoring traffic)",
			a[5].DeliveredBps, a[15].DeliveredBps)
	}
	if b[15].DeliveredBps == 0 {
		t.Fatal("victim B's traffic must be unaffected by A's blackhole")
	}
	if series[0].Monitor.PeerCount(15, 0) != 0 {
		t.Fatal("victim A's monitor saw flows after the blackhole")
	}
	if tops := series[1].Monitor.TopSrcPorts(1); len(tops) == 0 || tops[0].Port != 123 {
		t.Fatalf("victim B's monitor top ports: %+v", tops)
	}
}

// nonMemberSource emits flows from a MAC no member owns, alongside a
// real member's flows.
type nonMemberSource struct {
	member traffic.Peer
	target netip.Addr
}

func (s nonMemberSource) Offers(tick int, dt float64) []fabric.Offer {
	ghostMAC := netpkt.MustParseMAC("02:ee:ee:ee:ee:01")
	return []fabric.Offer{
		{Flow: netpkt.FlowKey{SrcMAC: s.member.MAC, Src: s.member.SrcIP, Dst: s.target,
			Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443}, Bytes: 1e6, Packets: 1000},
		{Flow: netpkt.FlowKey{SrcMAC: ghostMAC, Src: netip.MustParseAddr("203.0.113.9"), Dst: s.target,
			Proto: netpkt.ProtoUDP, SrcPort: 123, DstPort: 443}, Bytes: 1e6, Packets: 1000},
	}
}

// TestScenarioActivePeersCountsOnlyMembers pins the pre-streaming
// ActivePeers semantics: delivered flows from MACs that are not
// registered members reach the monitor (it is the measurement pipeline)
// but do not inflate the active-peer series.
func TestScenarioActivePeersCountsOnlyMembers(t *testing.T) {
	x, members := buildTestIXP(t, 4, 0.0, false)
	victim := members[0]
	src := PeersOf(members[1:2])[0]
	sc := &Scenario{
		IXP: x, VictimPort: victim.Name, Ticks: 3, Dt: 1,
		Sources: []Source{nonMemberSource{member: src, target: victimAddr(victim)}},
	}
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := samples[1].ActivePeers; got != 1 {
		t.Fatalf("ActivePeers = %d, want 1 (ghost MAC must not count)", got)
	}
	// The monitor itself still sees both source MACs.
	if got := sc.Monitor.PeerCount(1, 0); got != 2 {
		t.Fatalf("monitor PeerCount = %d, want 2", got)
	}
}
