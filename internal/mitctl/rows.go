package mitctl

import "stellar/internal/routeserver"

// MitigationRows renders the controller's live mitigations as
// looking-glass rows at simulation time now: ID, owner, state, TTL
// remaining, and the cumulative dropped/shaped bytes of their rules.
// It is the one MitigationSource implementation every deployment
// wiring shares (ixp.Build, cmd/ixpd).
func MitigationRows(c *Controller, now float64) []routeserver.MitigationRow {
	active := c.Active()
	rows := make([]routeserver.MitigationRow, 0, len(active))
	for _, m := range active {
		row := routeserver.MitigationRow{
			ID:           m.ID,
			Owner:        m.Requester,
			State:        m.State.String(),
			Origin:       m.Origin,
			TTLRemaining: m.TTLRemaining(now),
		}
		if u, err := c.Usage(m.ID); err == nil {
			row.DroppedBytes = float64(u.DroppedBytes)
			row.ShapedBytes = float64(u.ShapedResidue)
		}
		rows = append(rows, row)
	}
	return rows
}
