package mitctl

import (
	"errors"

	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/hw"
)

// RetryPolicy configures install/remove retry with exponential backoff.
// The zero value disables retry (one attempt per change), preserving the
// controller's historical behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per change, including
	// the first. 0 and 1 both mean "no retry".
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt, in simulation
	// seconds; attempt k waits min(MaxDelay, BaseDelay*2^(k-1)).
	// Defaults to 1s when MaxAttempts > 1.
	BaseDelay float64
	// MaxDelay caps the exponential backoff (default 30s).
	MaxDelay float64
	// Jitter spreads retries: the delay is multiplied by 1 + Jitter*u
	// with u drawn uniformly from [0,1) off the controller's seeded RNG,
	// so identical seeds reproduce identical schedules. 0 disables.
	Jitter float64
}

// delay returns the backoff before attempt number attempts+1 (attempts
// counts failures so far, >= 1).
func (p RetryPolicy) delay(attempts int, u float64) float64 {
	d := p.BaseDelay
	for i := 1; i < attempts && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d * (1 + p.Jitter*u)
}

// DegradePolicy configures the degradation ladder: when a fine-grained
// spec's install fails terminally on a hardware resource class (F1, F2,
// QoS slots), the controller falls back to the coarsest RTBH-equivalent
// rule for the same target — a destination-prefix drop costing one L3-L4
// criterion — and upgrades back to the fine spec when headroom returns.
// This is the paper's advanced-blackholing↔RTBH spectrum made automatic.
type DegradePolicy struct {
	// Enabled turns the ladder on.
	Enabled bool
	// Headroom reports the remaining system-wide (MAC, L3-L4) budgets —
	// typically hw.EdgeRouter.Headroom. nil disables upgrades (degraded
	// mitigations stay coarse until withdrawn or expired).
	Headroom func() (mac, l34 int)
	// MarginMAC / MarginL34 is extra headroom required beyond the fine
	// spec's own cost before an upgrade is attempted, damping thrash at
	// the budget edge.
	MarginMAC int
	MarginL34 int
	// UpgradeCooldown is the minimum time (seconds) between upgrade
	// attempts for one mitigation after a failed attempt (default 5s).
	UpgradeCooldown float64
}

// CoarseRuleSuffix tags the RTBH-equivalent fallback rule a degraded
// mitigation installs: "<mitigation-id>" + CoarseRuleSuffix.
const CoarseRuleSuffix = "~coarse"

// coarseChange compiles the RTBH-equivalent fallback for a spec: a
// destination-prefix drop covering every peer — one L3-L4 criterion,
// the cheapest rule the hardware model admits.
func coarseChange(s Spec) core.ConfigChange {
	m := fabric.MatchAll()
	m.DstIP = s.Target.Masked()
	return core.ConfigChange{
		Op:     core.OpInstall,
		Member: s.Requester,
		RuleID: s.ID + CoarseRuleSuffix,
		Match:  m,
		Action: fabric.ActionDrop,
	}
}

// ErrorClassCounts buckets the controller's apply failures by hardware
// error class, for the looking glass and fault reports.
type ErrorClassCounts struct {
	// F1 / F2 / QoS count hw.ErrL34Exhausted, hw.ErrMACExhausted and
	// hw.ErrQoSPoliciesExhausted apply failures (the paper's labels).
	F1  int `json:"f1"`
	F2  int `json:"f2"`
	QoS int `json:"qos"`
	// QueueDeadline counts changes abandoned because InstallDeadline
	// elapsed before an attempt succeeded.
	QueueDeadline int `json:"queue_deadline"`
	// Other counts every remaining failure (fabric, validation,
	// injected faults that mimic no hardware class).
	Other int `json:"other"`
}

// Total returns the sum over all classes except QueueDeadline (which
// annotates, rather than replaces, the underlying failure class).
func (e ErrorClassCounts) Total() int { return e.F1 + e.F2 + e.QoS + e.Other }

// classify buckets an apply error into its counter field.
func (e *ErrorClassCounts) classify(err error) {
	switch {
	case errors.Is(err, hw.ErrL34Exhausted):
		e.F1++
	case errors.Is(err, hw.ErrMACExhausted):
		e.F2++
	case errors.Is(err, hw.ErrQoSPoliciesExhausted):
		e.QoS++
	default:
		e.Other++
	}
}

// resourceErr reports whether err is a hardware resource-exhaustion
// class — the only failures the degradation ladder reacts to (a fabric
// or validation error would fail coarse rules just the same).
func resourceErr(err error) bool {
	return errors.Is(err, hw.ErrL34Exhausted) ||
		errors.Is(err, hw.ErrMACExhausted) ||
		errors.Is(err, hw.ErrQoSPoliciesExhausted)
}

// ErrorClasses returns the per-class apply-failure counters.
func (c *Controller) ErrorClasses() ErrorClassCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errClasses
}

// LastError returns the most recent apply or compilation error, if any.
func (c *Controller) LastError() (core.ApplyError, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.errTotal == 0 {
		return core.ApplyError{}, false
	}
	return c.lastErr, true
}

// SetQueueStalled gates the change queue: while stalled, Process keeps
// expiring TTLs and accepting requests but releases no changes (a wedged
// management session to the edge router). Unstalling lets the queue
// drain at the token rate again, bursting up to QueueBurst.
func (c *Controller) SetQueueStalled(stalled bool) {
	c.mu.Lock()
	c.stalled = stalled
	c.mu.Unlock()
}

// QueueStalled reports whether the change queue is gated.
func (c *Controller) QueueStalled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalled
}
