package mitctl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/stats"
)

// collectEvents subscribes a recorder and returns the captured stream.
func collectEvents(c *Controller) func() []Event {
	var mu sync.Mutex
	var evs []Event
	c.Subscribe(func(e Event) {
		mu.Lock()
		evs = append(evs, e)
		mu.Unlock()
	})
	return func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), evs...)
	}
}

func eventTypes(evs []Event) []EventType {
	out := make([]EventType, len(evs))
	for i, e := range evs {
		out[i] = e.Type
	}
	return out
}

func TestRetryBackoffRecoversFromTransientFault(t *testing.T) {
	h := newHarness(t, 2, nil)
	cfg := h.config()
	var calls int32
	cfg.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: 0.5, MaxDelay: 4}
	cfg.InstallHook = func(ch core.ConfigChange, attempt int, now float64) error {
		if ch.Op == core.OpInstall && atomic.AddInt32(&calls, 1) <= 2 {
			return errors.New("transient: management session reset")
		}
		return nil
	}
	c := New(cfg)
	events := collectEvents(c)

	m, err := c.Request(dropSpec(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1 at t=1 fails; backoff 0.5 → attempt 2 at t=1.5+ fails;
	// backoff 1.0 → attempt 3 succeeds.
	for now := 1.0; now <= 6; now += 0.25 {
		c.Process(now)
	}
	got, _ := c.Get(m.ID)
	if got.State != StateActive {
		t.Fatalf("state %v after retries, want active (last error %q)", got.State, got.LastError)
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Fatalf("install attempts = %d, want 3", n)
	}
	ec := c.ErrorClasses()
	if ec.Other != 2 || ec.F1+ec.F2+ec.QoS+ec.QueueDeadline != 0 {
		t.Fatalf("error classes %+v, want 2 transient in Other", ec)
	}
	var installed bool
	for _, e := range events() {
		if e.Type == EventInstalled {
			installed = true
		}
		if e.Type == EventRejected || e.Type == EventDegraded {
			t.Fatalf("unexpected %v event", e.Type)
		}
	}
	if !installed {
		t.Fatalf("no installed event; stream %v", eventTypes(events()))
	}
}

func TestRetryExhaustionRejects(t *testing.T) {
	h := newHarness(t, 2, nil)
	cfg := h.config()
	cfg.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 0.25}
	cfg.InstallHook = func(ch core.ConfigChange, attempt int, now float64) error {
		if ch.Op == core.OpInstall {
			return errors.New("persistent failure")
		}
		return nil
	}
	c := New(cfg)
	m, _ := c.Request(dropSpec(0), 1)
	for now := 1.0; now <= 10; now += 0.25 {
		c.Process(now)
	}
	got, _ := c.Get(m.ID)
	if got.State != StateRejected {
		t.Fatalf("state %v, want rejected after exhausting retries", got.State)
	}
	if ec := c.ErrorClasses(); ec.Other != 3 {
		t.Fatalf("error classes %+v, want 3 attempts in Other", ec)
	}
	if _, ok := c.LastError(); !ok {
		t.Fatal("LastError empty after failures")
	}
}

func TestInstallDeadlineUnderQueueStall(t *testing.T) {
	h := newHarness(t, 2, nil)
	cfg := h.config()
	cfg.InstallDeadline = 5
	c := New(cfg)
	m, _ := c.Request(dropSpec(0), 1)

	// Wedge the queue past the deadline, then recover.
	c.SetQueueStalled(true)
	for now := 1.0; now <= 8; now++ {
		c.Process(now)
	}
	if got, _ := c.Get(m.ID); got.State != StatePending {
		t.Fatalf("state %v while stalled, want pending", got.State)
	}
	if c.PendingChanges() == 0 {
		t.Fatal("queue drained while stalled")
	}
	c.SetQueueStalled(false)
	c.Process(9)
	got, _ := c.Get(m.ID)
	if got.State != StateRejected {
		t.Fatalf("state %v, want rejected (deadline passed in queue)", got.State)
	}
	if ec := c.ErrorClasses(); ec.QueueDeadline != 1 {
		t.Fatalf("error classes %+v, want 1 queue-deadline", ec)
	}
	if got.LastError == "" {
		t.Fatal("deadline rejection recorded no LastError")
	}
}

func TestQueueStallRecoveryDrains(t *testing.T) {
	h := newHarness(t, 2, nil)
	c := New(h.config())
	m, _ := c.Request(dropSpec(0), 1)
	c.SetQueueStalled(true)
	c.Process(2)
	if got, _ := c.Get(m.ID); got.State != StatePending {
		t.Fatalf("state %v during stall", got.State)
	}
	if !c.QueueStalled() {
		t.Fatal("QueueStalled() = false")
	}
	c.SetQueueStalled(false)
	c.Process(3)
	if got, _ := c.Get(m.ID); got.State != StateActive {
		t.Fatalf("state %v after stall cleared, want active", got.State)
	}
}

// TestDegradationLadder walks the full fine → coarse → fine ladder under
// a TCAM squeeze: the fine-grained install fails F1, the coarse
// RTBH-equivalent rule takes over (Degraded event), and when the squeeze
// lifts the controller reinstalls the fine spec and removes the fallback
// (Upgraded event).
func TestDegradationLadder(t *testing.T) {
	lim := hw.Limits{Ports: 2, L34CriteriaTotal: 10, MACFiltersTotal: 10, QoSPoliciesPerPort: 8}
	h := newHarness(t, 2, &lim)
	cfg := h.config()
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: 0.5}
	cfg.Degrade = DegradePolicy{Enabled: true, Headroom: h.router.Headroom, UpgradeCooldown: 1}
	c := New(cfg)
	events := collectEvents(c)

	// Squeeze: only 2 L3-L4 criteria effective; the fine spec needs 3
	// (proto + src port + dst prefix), the coarse fallback needs 1.
	h.router.SetReserved(0, 8)
	m, err := c.Request(dropSpec(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	for now := 1.0; now <= 5; now += 0.5 {
		c.Process(now)
	}
	got, _ := c.Get(m.ID)
	if got.State != StateActive || !got.Degraded {
		t.Fatalf("state %v degraded=%v, want active+degraded (last error %q)",
			got.State, got.Degraded, got.LastError)
	}
	if n := ruleCount(t, h, memberName(0)); n != 1 {
		t.Fatalf("%d rules installed under squeeze, want 1 coarse", n)
	}
	u, err := c.Usage(m.ID)
	if err != nil {
		t.Fatalf("usage while degraded: %v", err)
	}
	_ = u // live coarse rule counters roll up without error

	// Squeeze lifts: next Process should start the upgrade.
	h.router.SetReserved(0, 0)
	for now := 5.5; now <= 12; now += 0.5 {
		c.Process(now)
	}
	got, _ = c.Get(m.ID)
	if got.State != StateActive || got.Degraded {
		t.Fatalf("state %v degraded=%v after headroom returned, want active+fine", got.State, got.Degraded)
	}
	if n := ruleCount(t, h, memberName(0)); n != 1 {
		t.Fatalf("%d rules after upgrade, want 1 fine", n)
	}
	var saw []EventType
	for _, e := range events() {
		if e.Type == EventDegraded || e.Type == EventUpgraded {
			saw = append(saw, e.Type)
		}
	}
	if len(saw) != 2 || saw[0] != EventDegraded || saw[1] != EventUpgraded {
		t.Fatalf("ladder events %v, want [degraded upgraded]", saw)
	}

	// Withdraw cleans up the fine rule completely.
	if err := c.Withdraw(m.ID, memberName(0), 13); err != nil {
		t.Fatal(err)
	}
	c.Process(14)
	if n := ruleCount(t, h, memberName(0)); n != 0 {
		t.Fatalf("%d rules after withdraw, want 0", n)
	}
	if mac, l34 := h.router.Totals(); mac != 0 || l34 != 0 {
		t.Fatalf("TCAM leak after withdraw: %d MAC, %d L3-L4", mac, l34)
	}
}

// TestDegradedExpiryRemovesCoarseRule pins that a mitigation expiring
// while degraded removes the coarse fallback (it rode RuleIDs).
func TestDegradedExpiryRemovesCoarseRule(t *testing.T) {
	lim := hw.Limits{Ports: 2, L34CriteriaTotal: 10, MACFiltersTotal: 10, QoSPoliciesPerPort: 8}
	h := newHarness(t, 2, &lim)
	cfg := h.config()
	cfg.Degrade = DegradePolicy{Enabled: true}
	c := New(cfg)
	h.router.SetReserved(0, 8)
	spec := dropSpec(0)
	spec.TTL = 3
	m, _ := c.Request(spec, 1)
	c.Process(1)
	c.Process(2)
	if got, _ := c.Get(m.ID); !got.Degraded {
		t.Fatalf("not degraded: %+v", got)
	}
	c.Process(10) // expire
	c.Process(11)
	if got, _ := c.Get(m.ID); got.State != StateExpired {
		t.Fatalf("state %v, want expired", got.State)
	}
	if mac, l34 := h.router.Totals(); mac != 0 || l34 != 0 {
		t.Fatalf("TCAM leak after degraded expiry: %d/%d", mac, l34)
	}
}

// TestCoarseSpecHasNoLowerRung: an RTBH-equivalent request that fails on
// resources rejects instead of degrading to itself.
func TestCoarseSpecHasNoLowerRung(t *testing.T) {
	lim := hw.Limits{Ports: 2, L34CriteriaTotal: 10, MACFiltersTotal: 10, QoSPoliciesPerPort: 8}
	h := newHarness(t, 2, &lim)
	cfg := h.config()
	cfg.Degrade = DegradePolicy{Enabled: true}
	c := New(cfg)
	h.router.SetReserved(0, 10) // zero effective budget
	spec := Spec{Requester: memberName(0), Target: h.target(0), Action: fabric.ActionDrop}
	m, _ := c.Request(spec, 1)
	c.Process(1)
	c.Process(2)
	got, _ := c.Get(m.ID)
	if got.State != StateRejected || got.Degraded {
		t.Fatalf("coarse spec under squeeze: state %v degraded=%v, want rejected", got.State, got.Degraded)
	}
}

// TestErrorClassCounters is the table-driven looking-glass counter test:
// each hardware error class lands in its own bucket.
func TestErrorClassCounters(t *testing.T) {
	cases := []struct {
		name string
		err  error
		get  func(ErrorClassCounts) int
	}{
		{"f1", hw.ErrL34Exhausted, func(e ErrorClassCounts) int { return e.F1 }},
		{"f2", hw.ErrMACExhausted, func(e ErrorClassCounts) int { return e.F2 }},
		{"qos", hw.ErrQoSPoliciesExhausted, func(e ErrorClassCounts) int { return e.QoS }},
		{"wrapped-f1", fmt.Errorf("manager: %w", hw.ErrL34Exhausted), func(e ErrorClassCounts) int { return e.F1 }},
		{"other", errors.New("cable unplugged"), func(e ErrorClassCounts) int { return e.Other }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, 2, nil)
			cfg := h.config()
			cfg.InstallHook = func(ch core.ConfigChange, attempt int, now float64) error {
				if ch.Op == core.OpInstall {
					return tc.err
				}
				return nil
			}
			c := New(cfg)
			if _, err := c.Request(dropSpec(0), 1); err != nil {
				t.Fatal(err)
			}
			c.Process(1)
			ec := c.ErrorClasses()
			if tc.get(ec) != 1 || ec.Total() != 1 {
				t.Fatalf("classes %+v, want exactly one %s", ec, tc.name)
			}
			last, ok := c.LastError()
			if !ok || !errors.Is(last.Err, tc.err) && last.Err.Error() != tc.err.Error() {
				t.Fatalf("last error %v, want %v", last.Err, tc.err)
			}
		})
	}
}

// TestRetryJitterDeterministic: identical seeds reproduce the identical
// apply timeline; a different seed may differ (jitter draws differ).
func TestRetryJitterDeterministic(t *testing.T) {
	run := func(seed uint64) []float64 {
		h := newHarness(t, 2, nil)
		cfg := h.config()
		cfg.Seed = seed
		cfg.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: 0.5, MaxDelay: 8, Jitter: 0.5}
		var mu sync.Mutex
		var times []float64
		fail := 2
		cfg.InstallHook = func(ch core.ConfigChange, attempt int, now float64) error {
			mu.Lock()
			defer mu.Unlock()
			times = append(times, now)
			if ch.Op == core.OpInstall && fail > 0 {
				fail--
				return errors.New("transient")
			}
			return nil
		}
		c := New(cfg)
		c.Request(dropSpec(0), 1)
		for now := 1.0; now <= 20; now += 0.125 {
			c.Process(now)
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]float64(nil), times...)
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("timelines differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded timelines diverge at %d: %v vs %v", i, a, b)
		}
	}
}

// TestStressConcurrentFaultsWithRetries hammers Request / Withdraw /
// Process concurrently while the install hook injects deterministic-rate
// failures, with retries and the ladder active; run under -race. The
// invariant: after the storm, withdrawing everything and draining leaves
// zero installed rules and zero TCAM allocation.
func TestStressConcurrentFaultsWithRetries(t *testing.T) {
	const members = 8
	h := newHarness(t, members, nil)
	cfg := h.config()
	cfg.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 0.1, MaxDelay: 1, Jitter: 0.3}
	cfg.Degrade = DegradePolicy{Enabled: true, Headroom: h.router.Headroom, UpgradeCooldown: 0.5}
	var ctr uint64
	var inject atomic.Bool
	inject.Store(true)
	cfg.InstallHook = func(ch core.ConfigChange, attempt int, now float64) error {
		// Deterministic-rate pseudo-random failures: ~1 in 4 installs.
		// Removals stay fault-free: a remove whose retries exhaust leaks
		// its rule by design (surfaced via ErrorClasses, reconciled by
		// the operator), which would void the zero-leak invariant below.
		if ch.Op == core.OpInstall && inject.Load() && atomic.AddUint64(&ctr, 1)%4 == 0 {
			return fmt.Errorf("injected: %w", hw.ErrL34Exhausted)
		}
		return nil
	}
	c := New(cfg)

	var wg sync.WaitGroup
	var clock int64 // hundredths of a second, shared monotone clock
	now := func() float64 { return float64(atomic.LoadInt64(&clock)) / 100 }
	for g := 0; g < members; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRand(uint64(g) + 1)
			for i := 0; i < 50; i++ {
				spec := dropSpec(g)
				spec.Match.SrcPort = int32(100 + rng.Intn(8)) // a few distinct specs
				m, err := c.Request(spec, now())
				if err != nil {
					continue
				}
				if rng.Intn(2) == 0 {
					c.Withdraw(m.ID, spec.Requester, now())
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			atomic.AddInt64(&clock, 5)
			c.Process(now())
		}
	}()
	wg.Wait()

	// Quiesce: withdraw everything, lift faults, drain with time advancing
	// past every backoff.
	inject.Store(false)
	for _, m := range c.List() {
		if !m.State.Final() {
			c.Withdraw(m.ID, "", now())
		}
	}
	for i := 0; i < 400; i++ {
		atomic.AddInt64(&clock, 10)
		c.Process(now())
	}
	if n := c.PendingChanges(); n != 0 {
		t.Fatalf("queue not drained: %d pending", n)
	}
	if n := h.mgr.InstalledCount(); n != 0 {
		t.Fatalf("%d rules leaked after withdraw-all", n)
	}
	if mac, l34 := h.router.Totals(); mac != 0 || l34 != 0 {
		t.Fatalf("TCAM leak: %d MAC, %d L3-L4", mac, l34)
	}
}
