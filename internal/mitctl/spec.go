// Package mitctl is the IXP's unified mitigation control plane: one
// declarative, lifecycle-managed API behind every signaling channel the
// paper describes for advanced blackholing as a service (Section 3).
//
// A member states WHAT it wants mitigated as a Spec — target prefix,
// L2-L4 match, action, scope, TTL — and the Controller owns everything
// that happens afterwards:
//
//	Request → Validate → Install → Refresh/Expire → Withdraw
//
// Validation checks IRR prefix ownership and admission limits; install
// compiles the spec into tagged fabric rules paced through the change
// queue and applied by a network manager under hardware admission
// control; the TTL clock is driven from the simulation tick loop; and a
// versioned state store (List/Get/Snapshot) plus an event stream
// (Subscribe) close the request→install→measure loop the paper demands:
// every installed mitigation carries its ID in its fabric rule tags, so
// per-mitigation dropped/shaped byte counters are one Usage call away.
//
// The three signaling channels are thin adapters that compile into
// Spec: BGP extended-community signals (CommunityChannel, the paper's
// "IXP:2:123" scheme), RFC 5575 FlowSpec NLRI (SpecsFromFlowSpec), and
// the customer portal (SpecFromPortalRule / RequestFromPortal).
// Equivalent requests produce identical installed state regardless of
// the channel they arrived on, because the mitigation identity is
// derived from the spec's content, never from its transport.
package mitctl

import (
	"fmt"
	"hash/fnv"
	"net/netip"

	"stellar/internal/fabric"
)

// Channel identifies the signaling path a mitigation request arrived on.
// It is provenance metadata only: it never influences the mitigation's
// identity or installed state.
type Channel uint8

// Signaling channels.
const (
	// ChannelAPI is a direct controller request (portal UI, automation).
	ChannelAPI Channel = iota
	// ChannelCommunity is a BGP announcement carrying Advanced
	// Blackholing extended communities (Section 4.2.3).
	ChannelCommunity
	// ChannelFlowSpec is an RFC 5575 flow-specification NLRI.
	ChannelFlowSpec
	// ChannelPortal is a customer-portal rule referenced by ID.
	ChannelPortal
)

func (c Channel) String() string {
	switch c {
	case ChannelAPI:
		return "api"
	case ChannelCommunity:
		return "community"
	case ChannelFlowSpec:
		return "flowspec"
	case ChannelPortal:
		return "portal"
	default:
		return fmt.Sprintf("Channel(%d)", uint8(c))
	}
}

// Scope selects which traffic sources a mitigation covers.
type Scope uint8

// Scopes.
const (
	// ScopeAllPeers applies the match to traffic from every peer — one
	// rule on the victim's egress port.
	ScopeAllPeers Scope = iota
	// ScopePerPeer restricts the mitigation to the peers listed in
	// Spec.Peers — one rule per peer, each pinned to the peer's source
	// MAC (the L2 criterion of the hardware model, Figure 9).
	ScopePerPeer
)

func (s Scope) String() string {
	if s == ScopePerPeer {
		return "per-peer"
	}
	return "all-peers"
}

// Spec declares one desired mitigation. It is the channel-independent
// form every signaling path compiles into.
type Spec struct {
	// ID names the mitigation. Leave empty to let the controller derive
	// it from the spec's content (DeriveID), which is what makes
	// re-requests idempotent and channels equivalent.
	ID string
	// Requester is the member asking for the mitigation; it must own
	// Target (IRR validation) and is the only member allowed to
	// withdraw it.
	Requester string
	// Target is the destination prefix under attack. It is stamped into
	// the match's DstIP when the match leaves it open.
	Target netip.Prefix
	// Match is the L2-L4 classification pattern beyond the target
	// prefix (protocol, ports, source prefix...).
	Match fabric.Match
	// Action and ShapeRateBps select the drop or shape queue.
	Action       fabric.ActionKind
	ShapeRateBps float64
	// Scope and Peers bound the covered traffic sources.
	Scope Scope
	Peers []string
	// TTL is the mitigation lifetime in seconds; 0 never expires.
	// Re-requesting an identical spec re-arms the clock.
	TTL float64
	// Channel records the signaling path (provenance only).
	Channel Channel
	// Origin records where the request originated: "" for a request
	// signaled at this exchange, or the name of the exchange a
	// federation gossip link relayed it from. Like Channel it is
	// provenance metadata only — it never influences the mitigation's
	// identity, so a gossiped re-request of a locally live spec
	// refreshes the local mitigation instead of forking a remote twin.
	Origin string
}

// Local reports whether the spec was signaled at this exchange (no
// gossip provenance).
func (s Spec) Local() bool { return s.Origin == "" }

// normalized stamps the target prefix into the match and validates the
// spec's shape.
func (s Spec) normalized() (Spec, error) {
	if s.Requester == "" {
		return s, fmt.Errorf("mitctl: spec has no requester")
	}
	if !s.Target.IsValid() {
		return s, fmt.Errorf("mitctl: spec has no target prefix")
	}
	if !s.Match.DstIP.IsValid() {
		s.Match.DstIP = s.Target.Masked()
	}
	s.Target = s.Target.Masked()
	switch s.Action {
	case fabric.ActionDrop:
		s.ShapeRateBps = 0
	case fabric.ActionShape:
		if s.ShapeRateBps <= 0 {
			return s, fmt.Errorf("mitctl: shape action needs a positive rate")
		}
	default:
		return s, fmt.Errorf("mitctl: action %v is not a mitigation", s.Action)
	}
	if s.Scope == ScopePerPeer && len(s.Peers) == 0 {
		return s, fmt.Errorf("mitctl: per-peer scope lists no peers")
	}
	if s.Scope == ScopeAllPeers {
		s.Peers = nil
	}
	return s, nil
}

// key is the canonical content string the mitigation identity derives
// from. It covers everything that shapes installed state — requester,
// target, match, action, rate, scope — and deliberately excludes TTL
// (a refresh parameter) and the provenance fields Channel and Origin,
// so the same request re-signaled on any channel, or relayed from any
// exchange, lands on the same mitigation.
func (s Spec) key() string {
	k := fmt.Sprintf("%s|%s|%s|%v|%g|%v", s.Requester, s.Target, s.Match, s.Action, s.ShapeRateBps, s.Scope)
	if s.Scope == ScopePerPeer {
		for _, p := range s.Peers {
			k += "|" + p
		}
	}
	return k
}

// DeriveID returns the content-derived mitigation ID for a spec:
// "mit:<requester>:<target>:<hash>". Channels use it implicitly (a
// Request with an empty ID gets it); callers use it to address a
// mitigation they can restate but did not record the ID of.
func DeriveID(s Spec) string {
	s, _ = s.normalized()
	h := fnv.New32a()
	h.Write([]byte(s.key()))
	return fmt.Sprintf("mit:%s:%s:%08x", s.Requester, s.Target, h.Sum32())
}

// ruleIDs returns the fabric rule tags a spec installs: the mitigation
// ID itself for all-peers scope, or one "<id>#<peer>" tag per listed
// peer. The tag is what lets per-rule telemetry counters roll up into
// per-mitigation dropped/shaped bytes (Controller.Usage).
func (s Spec) ruleIDs() []string {
	if s.Scope == ScopeAllPeers {
		return []string{s.ID}
	}
	ids := make([]string, len(s.Peers))
	for i, p := range s.Peers {
		ids[i] = s.ID + "#" + p
	}
	return ids
}
