package mitctl

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"stellar/internal/bgp"
	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/mitigation"
	"stellar/internal/rib"
	"stellar/internal/routeserver"
)

// This file holds the three signaling-channel adapters. Each is a thin
// compiler from its wire format into Spec; the Controller neither knows
// nor cares which channel a request arrived on, which is what makes the
// channels interchangeable (the cross-channel equivalence property).

// SpecFromSignal compiles one decoded Advanced Blackholing extended
// community (the "IXP:2:123" scheme of Section 5.3) into a mitigation
// spec for the announced target prefix. SelCustom signals resolve their
// match template through the portal — the member's own rules only, the
// portal being the authorization boundary.
func SpecFromSignal(requester string, target netip.Prefix, rs core.RuleSpec, portal *core.Portal) (Spec, error) {
	spec := Spec{
		Requester: requester,
		Target:    target,
		Channel:   ChannelCommunity,
	}
	if rs.Selector == core.SelCustom {
		if portal == nil {
			return Spec{}, core.ErrNoSuchRule
		}
		custom, err := portal.Lookup(requester, rs.CustomID)
		if err != nil {
			return Spec{}, err
		}
		spec.Match = custom.MatchTemplate
		spec.Match.DstIP = netip.Prefix{} // the announced prefix wins
		spec.Action = custom.Action
		spec.ShapeRateBps = custom.ShapeRateBps
		return spec, nil
	}
	spec.Match = rs.Match(fabric.MatchAll())
	spec.Action = rs.Action
	spec.ShapeRateBps = rs.ShapeRateBps
	return spec, nil
}

// SpecsFromFlowSpec compiles an RFC 5575 flow specification plus its
// traffic-filtering action (traffic-rate extended community, §7) into
// mitigation specs: one per exact-match pattern the NLRI expands to
// (multi-value port/protocol sets expand via
// mitigation.FlowSpecToMatches). The destination prefix component names
// the mitigation target and is required.
func SpecsFromFlowSpec(requester string, fs *bgp.FlowSpec, attrs *bgp.PathAttrs, ttl float64) ([]Spec, error) {
	action, rateBps, ok := mitigation.FlowSpecAction(attrs)
	if !ok {
		return nil, fmt.Errorf("mitctl: flowspec carries no traffic-filtering action")
	}
	dst := fs.Component(bgp.FSDstPrefix)
	if dst == nil || !dst.Prefix.IsValid() {
		return nil, fmt.Errorf("mitctl: flowspec has no destination prefix to mitigate")
	}
	matches, err := mitigation.FlowSpecToMatches(fs)
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, len(matches))
	for i, m := range matches {
		specs[i] = Spec{
			Requester:    requester,
			Target:       dst.Prefix,
			Match:        m,
			Action:       action,
			ShapeRateBps: rateBps,
			TTL:          ttl,
			Channel:      ChannelFlowSpec,
		}
	}
	return specs, nil
}

// SpecFromPortalRule compiles a customer-portal rule into a mitigation
// spec for the given target prefix.
func SpecFromPortalRule(r core.CustomRule, target netip.Prefix, ttl float64) Spec {
	m := r.MatchTemplate
	m.DstIP = netip.Prefix{} // the requested target wins
	return Spec{
		Requester:    r.Member,
		Target:       target,
		Match:        m,
		Action:       r.Action,
		ShapeRateBps: r.ShapeRateBps,
		TTL:          ttl,
		Channel:      ChannelPortal,
	}
}

// CommunityChannel is the BGP signaling adapter: it consumes the route
// server's southbound feed, tracks announced paths in a RIB, and on
// every snapshot diff compiles the paths' Advanced Blackholing signals
// into mitigation requests and withdrawals. A re-announcement with the
// same signals refreshes (idempotent); changed signals withdraw the old
// specs and request the new ones; a withdrawn path (or session loss)
// withdraws everything it requested.
type CommunityChannel struct {
	ctl *Controller

	mu      sync.Mutex
	rib     *rib.Table
	prev    rib.Snapshot
	desired map[rib.PathKey][]desiredSpec
	// refs counts, per mitigation ID, the paths currently desiring it.
	// Content-derived IDs mean distinct paths (ADD-PATH duplicates of
	// the same announcement) can request the same mitigation; it must
	// only be withdrawn when the LAST such path goes away.
	refs map[string]int
}

type desiredSpec struct {
	id   string
	spec Spec
}

// NewCommunityChannel attaches a community adapter to a controller.
func NewCommunityChannel(ctl *Controller) *CommunityChannel {
	return &CommunityChannel{
		ctl:     ctl,
		rib:     rib.New(),
		desired: make(map[rib.PathKey][]desiredSpec),
		refs:    make(map[string]int),
	}
}

// RIBLen returns the number of signaling paths the channel tracks.
func (ch *CommunityChannel) RIBLen() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.rib.Len()
}

// HandleEvent folds one route-server event into the channel.
func (ch *CommunityChannel) HandleEvent(ev routeserver.ControllerEvent, now float64) {
	ch.HandleEvents([]routeserver.ControllerEvent{ev}, now)
}

// HandleEvents folds a batch of route-server events into the channel's
// RIB and compiles the resulting path diff into controller requests and
// withdrawals. It pairs with the route server's batched feed the same
// way core.Stellar.HandleEvents did: one snapshot diff per batch.
func (ch *CommunityChannel) HandleEvents(evs []routeserver.ControllerEvent, now float64) {
	if len(evs) == 0 {
		return
	}
	ch.mu.Lock()
	for _, ev := range evs {
		for _, prefix := range ev.Withdrawn {
			key := rib.PathKey{Prefix: prefix, Peer: ev.Peer, PathID: ev.PathID}
			if !ch.rib.Remove(key) && ev.PathID != 0 {
				// Wire-feed withdrawals carry no attributes, so the peer
				// label may not match the installed path's; the ADD-PATH
				// identifier alone names the path.
				if p := ch.rib.FindByPathID(prefix, ev.PathID); p != nil {
					ch.rib.Remove(p.Key)
				}
			}
		}
		for _, prefix := range ev.Announced {
			ch.rib.Add(rib.PathKey{Prefix: prefix, Peer: ev.Peer, PathID: ev.PathID}, ev.PeerAS, ev.Attrs)
		}
	}
	next := ch.rib.Snapshot()
	diff := rib.DiffSnapshots(ch.prev, next)
	ch.prev = next
	if diff.Empty() {
		ch.mu.Unlock()
		return
	}

	// Reconcile each touched path's desired specs, collecting the
	// controller calls to run outside the channel lock (controller
	// events fire subscribers synchronously).
	type action struct {
		withdraw  bool
		id        string
		requester string
		spec      Spec
	}
	var actions []action
	reconcile := func(key rib.PathKey, want []desiredSpec) {
		have := ch.desired[key]
		wantByID := make(map[string]bool, len(want))
		for _, d := range want {
			wantByID[d.id] = true
		}
		haveByID := make(map[string]bool, len(have))
		for _, d := range have {
			haveByID[d.id] = true
		}
		// Deterministic order: withdrawals of stale specs first (sorted),
		// then requests (sorted) — replacements free hardware budget
		// before consuming it. A stale spec only withdraws when this was
		// the last path desiring its mitigation.
		var stale []desiredSpec
		for _, d := range have {
			if !wantByID[d.id] {
				stale = append(stale, d)
			}
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i].id < stale[j].id })
		for _, d := range stale {
			if ch.refs[d.id]--; ch.refs[d.id] <= 0 {
				delete(ch.refs, d.id)
				actions = append(actions, action{withdraw: true, id: d.id, requester: d.spec.Requester})
			}
		}
		// Every wanted spec is requested, including ones this path already
		// asked for: a re-announcement is BGP's keepalive for the request,
		// and Request is idempotent — a live identical spec only re-arms
		// its TTL (no churn), while one that expired meanwhile starts a
		// fresh lifecycle.
		fresh := append([]desiredSpec(nil), want...)
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].id < fresh[j].id })
		for _, d := range fresh {
			if !haveByID[d.id] {
				ch.refs[d.id]++
			}
			actions = append(actions, action{id: d.id, requester: d.spec.Requester, spec: d.spec})
		}
		if len(want) == 0 {
			delete(ch.desired, key)
		} else {
			ch.desired[key] = want
		}
	}
	type compileErr struct {
		member string
		target netip.Prefix
		err    error
	}
	var compileErrs []compileErr
	specsFor := func(p *rib.Path) []desiredSpec {
		var out []desiredSpec
		seen := make(map[string]bool)
		for _, rs := range core.SignalsFrom(&p.Attrs) {
			spec, err := SpecFromSignal(p.Key.Peer, p.Key.Prefix, rs, ch.ctl.Portal())
			if err != nil {
				compileErrs = append(compileErrs, compileErr{p.Key.Peer, p.Key.Prefix, err})
				continue
			}
			// spec.TTL stays 0: the controller's DefaultTTL is the one
			// source of truth for community-signaled lifetimes.
			id := DeriveID(spec)
			if seen[id] {
				continue // duplicate signal in one announcement
			}
			seen[id] = true
			out = append(out, desiredSpec{id: id, spec: spec})
		}
		return out
	}
	for _, p := range diff.Removed {
		reconcile(p.Key, nil)
	}
	for _, p := range diff.Added {
		reconcile(p.Key, specsFor(p))
	}
	for _, p := range diff.Changed {
		reconcile(p.Key, specsFor(p))
	}
	ch.mu.Unlock()

	for _, e := range compileErrs {
		ch.ctl.noteError(e.member, e.target, e.err)
	}
	for _, a := range actions {
		if a.withdraw {
			// Ignore not-owner/unknown errors: the mitigation may have
			// been withdrawn directly through the API already.
			_ = ch.ctl.Withdraw(a.id, a.requester, now)
			continue
		}
		if _, err := ch.ctl.Request(a.spec, now); err != nil {
			// Validation/admission rejections are recorded in the store
			// and on the event stream by the controller itself.
			continue
		}
	}
}
