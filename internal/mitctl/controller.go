package mitctl

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
)

// State is a mitigation's lifecycle position.
type State uint8

// Lifecycle states. Pending and Active are live; the rest are final.
const (
	// StatePending: validated and queued; the change queue has not yet
	// released its installs (signal-to-configuration delay, Figure 10b).
	StatePending State = iota
	// StateActive: at least one fabric rule is installed.
	StateActive
	// StateExpired: the TTL clock ran out; removals are queued/applied.
	StateExpired
	// StateWithdrawn: the requester withdrew it.
	StateWithdrawn
	// StateRejected: validation, admission control or every rule install
	// failed; nothing remains installed.
	StateRejected
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateExpired:
		return "expired"
	case StateWithdrawn:
		return "withdrawn"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Final reports whether the state is terminal.
func (s State) Final() bool { return s != StatePending && s != StateActive }

// Mitigation is one spec plus its lifecycle state — what Snapshot, Get
// and the event stream expose.
type Mitigation struct {
	Spec
	State State
	// RequestedAt / InstalledAt are simulation timestamps (seconds).
	RequestedAt float64
	InstalledAt float64
	// ExpiresAt is the TTL deadline; 0 means the mitigation never
	// expires. Refreshing re-arms it.
	ExpiresAt float64
	// RuleIDs are the fabric rule tags the mitigation installs; each
	// tag carries the mitigation ID so per-rule telemetry counters roll
	// up per mitigation.
	RuleIDs []string
	// LastError records the most recent validation or install failure.
	LastError string
	// Degraded reports that the mitigation is currently running on its
	// coarse RTBH-equivalent fallback rule (see DegradePolicy) instead
	// of (some of) its fine-grained spec.
	Degraded bool
	// Version is the store version of the mitigation's last transition.
	Version uint64
}

// TTLRemaining returns the seconds left before expiry at time now, or
// -1 when the mitigation never expires.
func (m Mitigation) TTLRemaining(now float64) float64 {
	if m.ExpiresAt == 0 {
		return -1
	}
	if r := m.ExpiresAt - now; r > 0 {
		return r
	}
	return 0
}

// EventType labels a lifecycle transition on the event stream.
type EventType uint8

// Event types, in lifecycle order.
const (
	EventRequested EventType = iota
	EventValidated
	EventInstalled
	EventRefreshed
	EventExpired
	EventWithdrawn
	EventRejected
	// EventDegraded: a fine-grained install failed terminally on a
	// hardware resource class and the coarse RTBH-equivalent fallback
	// rule is installed in its place.
	EventDegraded
	// EventUpgraded: headroom returned, the fine-grained rules are
	// reinstalled and the coarse fallback's removal is queued.
	EventUpgraded
)

func (t EventType) String() string {
	switch t {
	case EventRequested:
		return "requested"
	case EventValidated:
		return "validated"
	case EventInstalled:
		return "installed"
	case EventRefreshed:
		return "refreshed"
	case EventExpired:
		return "expired"
	case EventWithdrawn:
		return "withdrawn"
	case EventRejected:
		return "rejected"
	case EventDegraded:
		return "degraded"
	case EventUpgraded:
		return "upgraded"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(t))
	}
}

// Event is one lifecycle transition delivered to subscribers.
type Event struct {
	Type EventType
	Time float64
	// Mitigation is a copy of the state after the transition.
	Mitigation Mitigation
}

// Usage is a mitigation's aggregated data-plane telemetry: the sum of
// its fabric rules' counters, including rules already removed (their
// final counters are folded in at removal). This is the "measure" end
// of the request→install→measure loop.
type Usage struct {
	MatchedPackets int64
	MatchedBytes   int64
	DroppedBytes   int64
	ForwardedBytes int64
	ShapedResidue  int64
}

func (u *Usage) add(c fabric.CounterSnapshot) {
	u.MatchedPackets += c.MatchedPackets
	u.MatchedBytes += c.MatchedBytes
	u.DroppedBytes += c.DroppedBytes
	u.ForwardedBytes += c.ForwardedBytes
	u.ShapedResidue += c.ShapedResidue
}

// Snapshot is a consistent view of the store: every mitigation (sorted
// by ID) plus the version counter that produced it. The version bumps
// on every transition, so pollers can cheaply detect change.
type Snapshot struct {
	Version     uint64
	Mitigations []Mitigation
}

// Errors returned by Request and Withdraw.
var (
	// ErrValidation wraps IRR/ownership validation failures.
	ErrValidation = errors.New("mitctl: validation failed")
	// ErrAdmission: the requester exceeded its live-mitigation budget.
	ErrAdmission = errors.New("mitctl: admission control rejected request")
	// ErrSpecMismatch: the ID is live with a different spec; withdraw
	// it first (mitigation specs are immutable while live).
	ErrSpecMismatch = errors.New("mitctl: mitigation exists with a different spec")
	// ErrUnknownMitigation: no mitigation with that ID.
	ErrUnknownMitigation = errors.New("mitctl: unknown mitigation")
	// ErrNotOwner: only the requesting member may withdraw.
	ErrNotOwner = errors.New("mitctl: not the mitigation owner")
)

// Config assembles a Controller.
type Config struct {
	// Manager applies compiled configuration changes to the data plane
	// under hardware admission control (core.QoSManager, core.SDNManager).
	Manager core.NetworkManager
	// QueueRate / QueueBurst parameterize the token-bucket change queue
	// between the controller and the manager (defaults: the production
	// 4.33 changes/s, burst 20 — Figure 10a).
	QueueRate  float64
	QueueBurst int
	// Validator checks prefix ownership on Request; nil accepts all.
	Validator Validator
	// Portal resolves customer-defined rule templates (SelCustom
	// signals, the portal channel); nil creates an empty portal.
	Portal *core.Portal
	// MemberMAC resolves a peer name to its fabric MAC for per-peer
	// scope; nil rejects ScopePerPeer requests.
	MemberMAC func(string) (netpkt.MAC, bool)
	// MaxActivePerMember bounds a member's live mitigations (0: no
	// controller-level bound; the hardware budget still applies).
	MaxActivePerMember int
	// DefaultTTL is applied to specs with TTL 0 (0: never expire).
	DefaultTTL float64

	// Retry re-queues failed changes with exponential backoff + jitter.
	// Zero value: one attempt, the historical behavior.
	Retry RetryPolicy
	// InstallDeadline bounds the time (seconds) from a change's first
	// enqueue until an attempt must succeed; past it the change is
	// abandoned (counted as QueueDeadline) even if retries remain.
	// 0 means no deadline.
	InstallDeadline float64
	// Degrade enables the fine→coarse→fine degradation ladder.
	Degrade DegradePolicy
	// InstallHook, when non-nil, runs before every manager Apply with
	// the change, its attempt number (1-based) and the clock; a non-nil
	// return is treated as the apply failing with that error, and the
	// manager is not called. This is the fault-injection seam
	// (internal/faults) — production deployments leave it nil.
	InstallHook func(change core.ConfigChange, attempt int, now float64) error
	// Seed seeds the controller's deterministic RNG (retry jitter).
	// 0 uses a fixed default so runs are reproducible by construction.
	Seed uint64
}

// rule install status, tracked per fabric rule tag across generations.
type ruleStatus uint8

const (
	ruleQueued ruleStatus = iota + 1
	ruleInstalled
	ruleFailed
)

// ruleEntry pairs a rule's status with the generation (mitigation
// record) the status belongs to. Rule IDs are stable across
// re-requests of the same spec, so after a withdraw-and-re-request the
// queue can hold ops from two generations for the same ID; the owner
// keeps them apart — a remove queued by one generation must not tear
// down (or mark failed) the rule a newer generation has since
// installed under the same ID. ruleInstalled mirrors the physical
// port: it is set only after a successful manager apply and cleared
// only by a successful removal.
type ruleEntry struct {
	status ruleStatus
	owner  *mit
}

// mit is the controller's internal record: the public view plus install
// bookkeeping.
type mit struct {
	Mitigation
	key             string
	pendingInstalls int
	okInstalls      int
	// accrued holds the final counters of rules already removed.
	accrued Usage

	// Degradation-ladder bookkeeping: the fine-grained install changes
	// (kept for upgrade re-enqueue), their total TCAM cost, and the
	// upgrade attempt state.
	fineOps          []core.ConfigChange
	fineMAC, fineL34 int
	upgrading        bool
	upgradePending   int
	nextUpgradeAt    float64
}

// queuedOp is one paced configuration change bound to its mitigation
// generation, so a re-requested ID never confuses an older generation's
// in-flight changes with the new one's.
type queuedOp struct {
	change     core.ConfigChange
	m          *mit
	enqueuedAt float64
	// firstAt is the first enqueue time, surviving retries — the
	// InstallDeadline clock. attempts counts apply attempts so far;
	// notBefore delays a retried op until its backoff elapses.
	firstAt   float64
	attempts  int
	notBefore float64
	// coarse / upgrade tag the op's role in the degradation ladder.
	coarse  bool
	upgrade bool
}

// Controller owns the mitigation lifecycle: it validates requests,
// compiles them into tagged fabric rules, paces installs and removals
// through a token-bucket change queue, drives TTL expiry from the tick
// loop, and maintains the versioned store and event stream.
//
// All methods are safe for concurrent use. Process must be called with
// a monotonically non-decreasing clock (the simulation tick loop).
type Controller struct {
	cfg Config

	// processMu serializes Process end to end (drain + apply), so
	// concurrent Process calls cannot reorder an install after its
	// remove.
	processMu sync.Mutex

	mu      sync.Mutex
	mits    map[string]*mit
	rules   map[string]ruleEntry
	queue   []queuedOp
	tokens  float64
	lastRef float64
	maxDep  int
	version uint64
	subs    []func(Event)

	latencies []float64
	applied   int
	applyErrs []core.ApplyError
	errTotal  int

	errClasses ErrorClassCounts
	lastErr    core.ApplyError
	stalled    bool
	rng        *stats.Rand
}

// Retention bounds for long-running deployments: telemetry slices keep
// a recent window (oldest half dropped on overflow) instead of growing
// for the controller's lifetime; rule-status entries are deleted once
// their removal resolves.
const (
	maxRetainedLatencies = 1 << 16
	maxRetainedErrors    = 4096
)

func (c *Controller) noteLatencyLocked(l float64) {
	c.latencies = append(c.latencies, l)
	if len(c.latencies) > maxRetainedLatencies {
		c.latencies = append(c.latencies[:0:0], c.latencies[len(c.latencies)-maxRetainedLatencies/2:]...)
	}
}

func (c *Controller) noteApplyErrLocked(e core.ApplyError) {
	c.errTotal++
	c.lastErr = e
	c.errClasses.classify(e.Err)
	c.applyErrs = append(c.applyErrs, e)
	if len(c.applyErrs) > maxRetainedErrors {
		c.applyErrs = append(c.applyErrs[:0:0], c.applyErrs[len(c.applyErrs)-maxRetainedErrors/2:]...)
	}
}

// New creates a Controller.
func New(cfg Config) *Controller {
	if cfg.QueueRate == 0 {
		cfg.QueueRate = 4.33
	}
	if cfg.QueueBurst < 1 {
		cfg.QueueBurst = 20
	}
	if cfg.Portal == nil {
		cfg.Portal = core.NewPortal()
	}
	if cfg.Retry.MaxAttempts > 1 {
		if cfg.Retry.BaseDelay <= 0 {
			cfg.Retry.BaseDelay = 1
		}
		if cfg.Retry.MaxDelay <= 0 {
			cfg.Retry.MaxDelay = 30
		}
	}
	if cfg.Degrade.Enabled && cfg.Degrade.UpgradeCooldown <= 0 {
		cfg.Degrade.UpgradeCooldown = 5
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Controller{
		cfg:    cfg,
		mits:   make(map[string]*mit),
		rules:  make(map[string]ruleEntry),
		tokens: float64(cfg.QueueBurst),
		rng:    stats.NewRand(seed),
	}
}

// Portal returns the customer rule portal.
func (c *Controller) Portal() *core.Portal { return c.cfg.Portal }

// Subscribe attaches a lifecycle event subscriber. Events are delivered
// synchronously, outside the controller's locks, in transition order.
func (c *Controller) Subscribe(fn func(Event)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, fn)
}

// emit delivers events to the subscribers captured at transition time.
func (c *Controller) emit(subs []func(Event), evs []Event) {
	for _, ev := range evs {
		for _, fn := range subs {
			fn(ev)
		}
	}
}

// Request asks for a mitigation at time now. The spec is validated
// (shape, IRR ownership, admission control) and its installs enter the
// change queue; they take effect when Process next releases them.
//
// Requests are idempotent: re-requesting a live mitigation with an
// identical spec refreshes its TTL and installs nothing new. A live ID
// with a different spec is refused with ErrSpecMismatch. A final-state
// ID (expired, withdrawn, rejected) starts a fresh lifecycle.
//
// The returned Mitigation is a copy of the stored state.
func (c *Controller) Request(spec Spec, now float64) (Mitigation, error) {
	spec, err := spec.normalized()
	if err != nil {
		return Mitigation{}, err
	}
	if spec.TTL == 0 {
		spec.TTL = c.cfg.DefaultTTL
	}
	if spec.ID == "" {
		spec.ID = DeriveID(spec)
	}
	key := spec.key()

	// Resolve per-peer MACs before taking the lock.
	var macs []netpkt.MAC
	var macErr error
	if spec.Scope == ScopePerPeer {
		macs = make([]netpkt.MAC, len(spec.Peers))
		for i, p := range spec.Peers {
			if c.cfg.MemberMAC == nil {
				macErr = fmt.Errorf("%w: per-peer scope unsupported (no MAC resolver)", ErrValidation)
				break
			}
			mac, ok := c.cfg.MemberMAC(p)
			if !ok {
				macErr = fmt.Errorf("%w: unknown peer %s", ErrValidation, p)
				break
			}
			macs[i] = mac
		}
	}

	c.mu.Lock()
	if existing, ok := c.mits[spec.ID]; ok && !existing.State.Final() {
		if existing.key != key {
			c.mu.Unlock()
			return Mitigation{}, fmt.Errorf("%w: %s", ErrSpecMismatch, spec.ID)
		}
		// Refresh: re-arm the TTL clock, nothing to install.
		if spec.TTL > 0 {
			existing.ExpiresAt = now + spec.TTL
			existing.TTL = spec.TTL
		} else {
			existing.ExpiresAt = 0
			existing.TTL = 0
		}
		c.version++
		existing.Version = c.version
		view := existing.Mitigation
		subs, evs := c.subsLocked(), []Event{{Type: EventRefreshed, Time: now, Mitigation: view}}
		c.mu.Unlock()
		c.emit(subs, evs)
		return view, nil
	}

	reject := func(reason error) (Mitigation, error) {
		m := &mit{Mitigation: Mitigation{
			Spec: spec, State: StateRejected, RequestedAt: now, LastError: reason.Error(),
		}, key: key}
		c.version++
		m.Version = c.version
		c.mits[spec.ID] = m
		view := m.Mitigation
		subs, evs := c.subsLocked(), []Event{
			{Type: EventRequested, Time: now, Mitigation: view},
			{Type: EventRejected, Time: now, Mitigation: view},
		}
		c.mu.Unlock()
		c.emit(subs, evs)
		return view, reason
	}

	if macErr != nil {
		return reject(macErr)
	}
	if c.cfg.Validator != nil {
		if err := c.cfg.Validator.Validate(spec.Requester, spec.Target); err != nil {
			return reject(fmt.Errorf("%w: %v", ErrValidation, err))
		}
	}
	if max := c.cfg.MaxActivePerMember; max > 0 {
		live := 0
		for _, m := range c.mits {
			if m.Requester == spec.Requester && !m.State.Final() {
				live++
			}
		}
		if live >= max {
			return reject(fmt.Errorf("%w: member %s has %d live mitigations (max %d)",
				ErrAdmission, spec.Requester, live, max))
		}
	}

	m := &mit{Mitigation: Mitigation{
		Spec: spec, State: StatePending, RequestedAt: now, RuleIDs: spec.ruleIDs(),
	}, key: key}
	if spec.TTL > 0 {
		m.ExpiresAt = now + spec.TTL
	}
	m.pendingInstalls = len(m.RuleIDs)
	for i, rid := range m.RuleIDs {
		match := spec.Match
		if spec.Scope == ScopePerPeer {
			mac := macs[i]
			match.SrcMAC = &mac
		}
		if c.rules[rid].status != ruleInstalled {
			// ruleInstalled means a prior generation's rule is still
			// physically installed with its removal queued ahead of this
			// install; leave the entry so that removal still applies.
			c.rules[rid] = ruleEntry{status: ruleQueued, owner: m}
		}
		change := core.ConfigChange{
			Op: core.OpInstall, Member: spec.Requester, RuleID: rid,
			Match: match, Action: spec.Action, ShapeRateBps: spec.ShapeRateBps,
		}
		m.fineOps = append(m.fineOps, change)
		cm, cl := match.CriteriaCount()
		m.fineMAC += cm
		m.fineL34 += cl
		c.enqueueLocked(queuedOp{change: change, m: m, enqueuedAt: now, firstAt: now})
	}
	c.version++
	m.Version = c.version
	c.mits[spec.ID] = m
	view := m.Mitigation
	subs, evs := c.subsLocked(), []Event{
		{Type: EventRequested, Time: now, Mitigation: view},
		{Type: EventValidated, Time: now, Mitigation: view},
	}
	c.mu.Unlock()
	c.emit(subs, evs)
	return view, nil
}

// Withdraw retracts a mitigation at time now. Only the requesting
// member may withdraw (requester "" bypasses the check, for operator
// tooling). Withdrawing a mitigation already in a final state — e.g.
// one that expired in the same tick — is a no-op, not an error.
func (c *Controller) Withdraw(id, requester string, now float64) error {
	c.mu.Lock()
	m, ok := c.mits[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownMitigation, id)
	}
	if requester != "" && requester != m.Requester {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s belongs to %s", ErrNotOwner, id, m.Requester)
	}
	if m.State.Final() {
		c.mu.Unlock()
		return nil
	}
	c.finalizeLocked(m, StateWithdrawn, now)
	view := m.Mitigation
	subs := c.subsLocked()
	c.mu.Unlock()
	c.emit(subs, []Event{{Type: EventWithdrawn, Time: now, Mitigation: view}})
	return nil
}

// finalizeLocked moves a live mitigation to a final state and queues
// the removal of its rules.
func (c *Controller) finalizeLocked(m *mit, s State, now float64) {
	m.State = s
	c.version++
	m.Version = c.version
	for _, rid := range m.RuleIDs {
		c.enqueueLocked(queuedOp{change: core.ConfigChange{
			Op: core.OpRemove, Member: m.Requester, RuleID: rid,
		}, m: m, enqueuedAt: now, firstAt: now})
	}
}

func (c *Controller) enqueueLocked(op queuedOp) {
	c.queue = append(c.queue, op)
	if len(c.queue) > c.maxDep {
		c.maxDep = len(c.queue)
	}
}

func (c *Controller) subsLocked() []func(Event) {
	if len(c.subs) == 0 {
		return nil
	}
	out := make([]func(Event), len(c.subs))
	copy(out, c.subs)
	return out
}

// Process advances the controller to time now: mitigations whose TTL
// ran out expire, then the token-bucket queue releases every change a
// token is available for (FIFO) and applies it through the manager.
// It returns the number of changes applied. The tick loop calls it
// once per tick, before traffic egresses.
func (c *Controller) Process(now float64) int {
	c.processMu.Lock()
	defer c.processMu.Unlock()

	var pending []Event
	c.mu.Lock()
	// TTL clock: expire before draining so the removals of a mitigation
	// expiring this tick can ride this tick's tokens. Due mitigations
	// finalize in ID order — map iteration order must not decide which
	// one's removals win the tick's remaining tokens (determinism is a
	// repo-wide invariant).
	var due []*mit
	for _, m := range c.mits {
		if !m.State.Final() && m.ExpiresAt > 0 && m.ExpiresAt <= now {
			due = append(due, m)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].ID < due[j].ID })
	for _, m := range due {
		c.finalizeLocked(m, StateExpired, now)
		pending = append(pending, Event{Type: EventExpired, Time: now, Mitigation: m.Mitigation})
	}
	// Degradation-ladder upgrades: degraded mitigations whose fine spec
	// now fits the returned headroom re-enqueue their failed fine rules
	// (ID order; the cost of upgrades started this tick is deducted from
	// the local headroom view so concurrent upgrades never oversubscribe).
	c.scanUpgradesLocked(now)
	// Token-bucket release, FIFO (same discipline as Figure 10a's
	// change-rate cap: refill rate*dt, clamp to burst, one token per
	// change). A retried op whose backoff has not elapsed keeps its
	// queue position but lets later ops pass; a stalled queue releases
	// nothing at all.
	if now > c.lastRef {
		c.tokens += (now - c.lastRef) * c.cfg.QueueRate
		if c.tokens > float64(c.cfg.QueueBurst) {
			c.tokens = float64(c.cfg.QueueBurst)
		}
		c.lastRef = now
	}
	var released []queuedOp
	if !c.stalled {
		rest := c.queue[:0]
		for _, op := range c.queue {
			if c.tokens >= 1 && op.notBefore <= now {
				released = append(released, op)
				c.tokens--
			} else {
				rest = append(rest, op)
			}
		}
		c.queue = rest
	}
	subs := c.subsLocked()
	c.mu.Unlock()

	applied := 0
	for _, op := range released {
		if evs, ok := c.applyOne(op, now); ok {
			applied++
			pending = append(pending, evs...)
		}
	}
	c.emit(subs, pending)
	return applied
}

// ErrInstallDeadline is the terminal error recorded when a change's
// InstallDeadline elapses before any attempt succeeds.
var ErrInstallDeadline = errors.New("mitctl: install deadline exceeded")

// applyChange runs one attempt: the fault-injection hook first (a
// non-nil return IS the attempt's failure), then the manager.
func (c *Controller) applyChange(op queuedOp, now float64) error {
	if h := c.cfg.InstallHook; h != nil {
		if err := h(op.change, op.attempts, now); err != nil {
			return err
		}
	}
	return c.cfg.Manager.Apply(op.change)
}

// retryLocked decides whether a failed op gets another attempt. When it
// does, the op re-enters the queue with its backoff stamped into
// notBefore and retryLocked returns true; terminal failures (retry
// disabled, attempts exhausted, deadline would pass) return false.
func (c *Controller) retryLocked(op queuedOp, now float64) bool {
	p := c.cfg.Retry
	if p.MaxAttempts <= 1 || op.attempts >= p.MaxAttempts {
		return false
	}
	delay := p.delay(op.attempts, c.rng.Float64())
	if dl := c.cfg.InstallDeadline; dl > 0 && now+delay > op.firstAt+dl {
		c.errClasses.QueueDeadline++
		return false
	}
	op.notBefore = now + delay
	c.enqueueLocked(op)
	return true
}

// applyOne performs one released change and folds the outcome into the
// store. It returns lifecycle events to deliver and whether the change
// counted as applied.
func (c *Controller) applyOne(op queuedOp, now float64) ([]Event, bool) {
	op.attempts++
	if op.change.Op == core.OpRemove {
		c.mu.Lock()
		if e := c.rules[op.change.RuleID]; e.status != ruleInstalled || e.owner != op.m {
			// Nothing of this generation's to undo: the paired install
			// failed, is still queued behind its backoff, or a newer
			// generation has since installed under the same ID (its own
			// removal is queued and must not be preempted). Drop a
			// leftover ruleFailed entry of this generation; anything
			// another generation owns stays untouched.
			if e.status == ruleFailed && e.owner == op.m {
				delete(c.rules, op.change.RuleID)
			}
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
		// Fold the rule's final counters into the mitigation before the
		// rule (and its counters) disappear from the port.
		var final fabric.CounterSnapshot
		haveFinal := false
		if src, ok := c.cfg.Manager.(core.CounterSource); ok {
			if counters, err := src.Counters(op.change.RuleID); err == nil {
				final = counters.Snapshot()
				haveFinal = true
			}
		}
		err := c.applyChange(op, now)
		c.mu.Lock()
		defer c.mu.Unlock()
		if err != nil {
			c.noteApplyErrLocked(core.ApplyError{Change: op.change, Err: err})
			// A leaked rule outlives its mitigation; removes retry too.
			c.retryLocked(op, now)
			return nil, false
		}
		// The rule is off the port; its status entry has no further
		// reader (a re-request would start from a clean slate anyway).
		delete(c.rules, op.change.RuleID)
		if haveFinal {
			op.m.accrued.add(final)
		}
		c.noteLatencyLocked(now - op.enqueuedAt)
		c.applied++
		return nil, true
	}

	var err error
	if dl := c.cfg.InstallDeadline; dl > 0 && now > op.firstAt+dl {
		// The change sat in the queue (stall, backlog, retries) past its
		// deadline: abandon without touching the hardware.
		err = ErrInstallDeadline
	} else {
		err = c.applyChange(op, now)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := op.m
	if err != nil {
		c.noteApplyErrLocked(core.ApplyError{Change: op.change, Err: err})
		if err == ErrInstallDeadline {
			c.errClasses.QueueDeadline++
		} else if c.retryLocked(op, now) {
			// Another attempt is queued; the install is not settled yet.
			return nil, false
		}
		return c.installFailedLocked(op, err, now), false
	}
	c.rules[op.change.RuleID] = ruleEntry{status: ruleInstalled, owner: m}
	m.okInstalls++
	m.pendingInstalls--
	c.noteLatencyLocked(now - op.enqueuedAt)
	c.applied++
	if m.State.Final() {
		// The mitigation finalized while this install was backing off;
		// its removal pass already ran (and skipped this then-queued
		// rule), so pair the late install with a fresh removal.
		c.enqueueLocked(queuedOp{change: core.ConfigChange{
			Op: core.OpRemove, Member: m.Requester, RuleID: op.change.RuleID,
		}, m: m, enqueuedAt: now, firstAt: now})
		return nil, true
	}
	var evs []Event
	if m.State == StatePending {
		m.State = StateActive
		m.InstalledAt = now
		c.version++
		m.Version = c.version
		evs = append(evs, Event{Type: EventInstalled, Time: now, Mitigation: m.Mitigation})
	}
	if op.coarse && !m.Degraded {
		m.Degraded = true
		c.version++
		m.Version = c.version
		evs = append(evs, Event{Type: EventDegraded, Time: now, Mitigation: m.Mitigation})
	}
	if op.upgrade {
		m.upgradePending--
		if m.upgradePending == 0 {
			m.upgrading = false
			m.Degraded = false
			coarseID := m.ID + CoarseRuleSuffix
			for i, rid := range m.RuleIDs {
				if rid == coarseID {
					m.RuleIDs = append(m.RuleIDs[:i:i], m.RuleIDs[i+1:]...)
					break
				}
			}
			c.enqueueLocked(queuedOp{change: core.ConfigChange{
				Op: core.OpRemove, Member: m.Requester, RuleID: coarseID,
			}, m: m, enqueuedAt: now, firstAt: now})
			c.version++
			m.Version = c.version
			evs = append(evs, Event{Type: EventUpgraded, Time: now, Mitigation: m.Mitigation})
		}
	}
	return evs, true
}

// installFailedLocked settles a terminally failed install: marks the
// rule, records the error on the mitigation, and walks the degradation
// ladder — a resource-class failure of a fine-grained rule queues the
// coarse RTBH-equivalent fallback instead of rejecting outright.
func (c *Controller) installFailedLocked(op queuedOp, err error, now float64) []Event {
	m := op.m
	m.pendingInstalls--
	// Only this generation's own bookkeeping may be marked failed, and a
	// failed install never clobbers ruleInstalled: that status mirrors
	// the physical port (an earlier generation's rule is still installed
	// — core.ErrRuleExists is how this attempt finds out), and the
	// removal paired with it checks for ruleInstalled before touching
	// the hardware. Overwriting would make that removal skip and orphan
	// the physical rule.
	if e, ok := c.rules[op.change.RuleID]; !ok || (e.owner == m && e.status != ruleInstalled) {
		c.rules[op.change.RuleID] = ruleEntry{status: ruleFailed, owner: m}
	}
	m.LastError = err.Error()
	if op.upgrade {
		// The upgrade attempt failed: stay coarse, cool down before the
		// next headroom probe.
		m.upgradePending--
		if m.upgradePending == 0 {
			m.upgrading = false
		}
		m.nextUpgradeAt = now + c.cfg.Degrade.UpgradeCooldown
		return nil
	}
	if !op.coarse && c.degradeLocked(m, err, now) {
		return nil
	}
	if m.State == StatePending && m.pendingInstalls == 0 && m.okInstalls == 0 {
		// Every rule was refused (hardware admission control).
		m.State = StateRejected
		c.version++
		m.Version = c.version
		return []Event{{Type: EventRejected, Time: now, Mitigation: m.Mitigation}}
	}
	return nil
}

// degradeLocked queues the coarse fallback for a fine rule that failed
// on a hardware resource class. It reports whether a fallback is (now)
// in flight, which holds off rejection until the coarse attempt settles.
func (c *Controller) degradeLocked(m *mit, err error, now float64) bool {
	if !c.cfg.Degrade.Enabled || !resourceErr(err) || m.State.Final() {
		return false
	}
	coarseID := m.ID + CoarseRuleSuffix
	if st := c.rules[coarseID].status; st == ruleQueued || st == ruleInstalled {
		return true // fallback already queued or live (per-peer sibling got here first)
	}
	if len(m.fineOps) == 1 && m.fineMAC == 0 && m.fineL34 <= 1 &&
		m.Action == fabric.ActionDrop {
		// The spec already IS the coarse form; there is no lower rung.
		return false
	}
	m.pendingInstalls++
	m.RuleIDs = append(m.RuleIDs, coarseID)
	c.rules[coarseID] = ruleEntry{status: ruleQueued, owner: m}
	c.enqueueLocked(queuedOp{
		change: coarseChange(m.Spec), m: m,
		enqueuedAt: now, firstAt: now, coarse: true,
	})
	return true
}

// scanUpgradesLocked re-enqueues the failed fine rules of degraded
// mitigations whose cost now fits under the reported headroom (plus
// margin), in ID order; each started upgrade's cost is deducted from
// the local headroom view so one tick never oversubscribes.
func (c *Controller) scanUpgradesLocked(now float64) {
	deg := c.cfg.Degrade
	if !deg.Enabled || deg.Headroom == nil {
		return
	}
	var cands []*mit
	for _, m := range c.mits {
		if !m.State.Final() && m.Degraded && !m.upgrading && now >= m.nextUpgradeAt {
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	mac, l34 := deg.Headroom()
	for _, m := range cands {
		var ops []core.ConfigChange
		needMAC, needL34 := 0, 0
		for _, ch := range m.fineOps {
			if c.rules[ch.RuleID].status == ruleInstalled {
				continue
			}
			ops = append(ops, ch)
			cm, cl := ch.Match.CriteriaCount()
			needMAC += cm
			needL34 += cl
		}
		if len(ops) == 0 {
			continue
		}
		if mac < needMAC+deg.MarginMAC || l34 < needL34+deg.MarginL34 {
			continue
		}
		mac -= needMAC
		l34 -= needL34
		m.upgrading = true
		m.upgradePending = len(ops)
		m.pendingInstalls += len(ops)
		for _, ch := range ops {
			c.rules[ch.RuleID] = ruleEntry{status: ruleQueued, owner: m}
			c.enqueueLocked(queuedOp{change: ch, m: m, enqueuedAt: now, firstAt: now, upgrade: true})
		}
	}
}

// Get returns a copy of the mitigation with the given ID.
func (c *Controller) Get(id string) (Mitigation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.mits[id]; ok {
		return m.Mitigation, true
	}
	return Mitigation{}, false
}

// List returns every mitigation, sorted by ID.
func (c *Controller) List() []Mitigation { return c.Snapshot().Mitigations }

// Snapshot returns the versioned store view.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Version: c.version, Mitigations: make([]Mitigation, 0, len(c.mits))}
	for _, m := range c.mits {
		s.Mitigations = append(s.Mitigations, m.Mitigation)
	}
	sortMitigations(s.Mitigations)
	return s
}

// Active returns the live (pending or active) mitigations, sorted by ID.
func (c *Controller) Active() []Mitigation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Mitigation, 0, len(c.mits))
	for _, m := range c.mits {
		if !m.State.Final() {
			out = append(out, m.Mitigation)
		}
	}
	sortMitigations(out)
	return out
}

// Prune drops final-state mitigations last touched before the given
// version, bounding store growth in long-running deployments.
func (c *Controller) Prune(beforeVersion uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, m := range c.mits {
		if m.State.Final() && m.Version < beforeVersion {
			delete(c.mits, id)
			n++
		}
	}
	return n
}

// Usage returns the mitigation's aggregated per-rule telemetry: live
// counters of installed rules plus the final counters of rules already
// removed. It requires a manager exposing counters (core.CounterSource).
func (c *Controller) Usage(id string) (Usage, error) {
	c.mu.Lock()
	m, ok := c.mits[id]
	if !ok {
		c.mu.Unlock()
		return Usage{}, fmt.Errorf("%w: %s", ErrUnknownMitigation, id)
	}
	u := m.accrued
	var live []string
	for _, rid := range m.RuleIDs {
		if c.rules[rid].status == ruleInstalled {
			live = append(live, rid)
		}
	}
	c.mu.Unlock()
	if len(live) > 0 {
		src, ok := c.cfg.Manager.(core.CounterSource)
		if !ok {
			return u, fmt.Errorf("mitctl: manager %q exposes no telemetry", c.cfg.Manager.Name())
		}
		for _, rid := range live {
			counters, err := src.Counters(rid)
			if err != nil {
				continue // racing a concurrent removal
			}
			u.add(counters.Snapshot())
		}
	}
	return u, nil
}

// UsageOf is Usage addressed by content: it derives the spec's ID.
func (c *Controller) UsageOf(spec Spec) (Usage, error) {
	return c.Usage(DeriveID(spec))
}

// PendingChanges returns the change-queue depth.
func (c *Controller) PendingChanges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// MaxQueueDepth returns the queue's high-water mark.
func (c *Controller) MaxQueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxDep
}

// AppliedChanges returns the count of successfully applied changes.
func (c *Controller) AppliedChanges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// Latencies returns the queueing delay of applied changes in seconds —
// the signal-to-configuration series of Figure 10(b). Long-running
// deployments retain the most recent window (maxRetainedLatencies).
func (c *Controller) Latencies() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.latencies...)
}

// Errors returns the accumulated apply and channel-compilation errors
// (the most recent maxRetainedErrors of them; ErrorCount reports the
// lifetime total).
func (c *Controller) Errors() []core.ApplyError {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]core.ApplyError(nil), c.applyErrs...)
}

// ErrorCount returns the lifetime count of apply and compilation
// errors, unaffected by the Errors retention window. Pollers use the
// delta to log only errors they have not seen yet.
func (c *Controller) ErrorCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errTotal
}

// noteError records a channel-compilation failure (e.g. a SelCustom
// signal referencing a portal rule the member never defined) on the
// error log without creating a mitigation.
func (c *Controller) noteError(member string, target netip.Prefix, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteApplyErrLocked(core.ApplyError{
		Change: core.ConfigChange{Op: core.OpInstall, Member: member,
			RuleID: fmt.Sprintf("mit:%s:%s:?", member, target)},
		Err: err,
	})
}

// RequestFromPortal requests a mitigation from a customer-portal rule:
// the member's stored match template with the target prefix stamped in
// (the SelCustom flow of Section 4.3, minus the BGP leg).
func (c *Controller) RequestFromPortal(member string, customID uint32, target netip.Prefix, ttl, now float64) (Mitigation, error) {
	rule, err := c.cfg.Portal.Lookup(member, customID)
	if err != nil {
		return Mitigation{}, err
	}
	return c.Request(SpecFromPortalRule(rule, target, ttl), now)
}

func sortMitigations(ms []Mitigation) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}
