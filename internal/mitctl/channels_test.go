package mitctl

import (
	"fmt"
	"net/netip"
	"testing"

	"stellar/internal/bgp"
	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/netpkt"
	"stellar/internal/routeserver"
)

// signalAttrs builds path attributes carrying the encoded rule specs.
func signalAttrs(t *testing.T, specs ...core.RuleSpec) bgp.PathAttrs {
	t.Helper()
	var attrs bgp.PathAttrs
	for _, s := range specs {
		ec, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		attrs.ExtCommunities = append(attrs.ExtCommunities, ec)
	}
	return attrs
}

// installedState renders a port's rules channel-independently: sorted
// "match -> action@rate" lines.
func installedState(t *testing.T, h *harness, member string) []string {
	t.Helper()
	port, err := h.fab.PortByName(member)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, r := range port.Rules() {
		out = append(out, fmt.Sprintf("%s|%s -> %v@%g", r.ID, r.Match, r.Action, r.ShapeRateBps))
	}
	return out
}

// TestCrossChannelEquivalence pins the acceptance property: the same
// mitigation requested through BGP communities, FlowSpec NLRI and the
// portal produces identical installed state — same mitigation ID, same
// rule tags, same matches — on three independently wired controllers.
func TestCrossChannelEquivalence(t *testing.T) {
	target := netip.MustParsePrefix("100.0.0.10/32")
	run := func(drive func(h *harness, ctl *Controller)) (ids []string, rules []string, snap Snapshot) {
		h := newHarness(t, 2, nil)
		ctl := New(h.config())
		drive(h, ctl)
		ctl.Process(1)
		for _, m := range ctl.Active() {
			ids = append(ids, m.ID)
		}
		return ids, installedState(t, h, memberName(0)), ctl.Snapshot()
	}

	// Channel 1: BGP community signal IXP:2:123 via the route-server feed.
	commIDs, commRules, _ := run(func(h *harness, ctl *Controller) {
		ch := NewCommunityChannel(ctl)
		ch.HandleEvent(routeserver.ControllerEvent{
			Peer: memberName(0), PeerAS: 64512, PathID: 1,
			Announced: []netip.Prefix{target},
			Attrs:     signalAttrs(t, core.DropUDPSrcPort(123)),
		}, 0)
	})

	// Channel 2: RFC 5575 FlowSpec NLRI with a traffic-rate 0 (drop).
	fsIDs, fsRules, _ := run(func(h *harness, ctl *Controller) {
		fs := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
			bgp.DstPrefix(target),
			bgp.Numeric(bgp.FSIPProto, bgp.Eq(uint64(netpkt.ProtoUDP))),
			bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123)),
		}}
		attrs := &bgp.PathAttrs{ExtCommunities: []bgp.ExtCommunity{bgp.TrafficRate(64512, 0)}}
		specs, err := SpecsFromFlowSpec(memberName(0), fs, attrs, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range specs {
			if _, err := ctl.Request(s, 0); err != nil {
				t.Fatal(err)
			}
		}
	})

	// Channel 3: a customer-portal rule referenced by ID.
	portalIDs, portalRules, _ := run(func(h *harness, ctl *Controller) {
		tmpl := fabric.MatchAll()
		tmpl.Proto = netpkt.ProtoUDP
		tmpl.SrcPort = 123
		id := ctl.Portal().Define(memberName(0), tmpl, fabric.ActionDrop, 0)
		if _, err := ctl.RequestFromPortal(memberName(0), id, target, 0, 0); err != nil {
			t.Fatal(err)
		}
	})

	if fmt.Sprint(commIDs) != fmt.Sprint(fsIDs) || fmt.Sprint(fsIDs) != fmt.Sprint(portalIDs) {
		t.Fatalf("mitigation IDs diverge:\n community %v\n flowspec  %v\n portal    %v",
			commIDs, fsIDs, portalIDs)
	}
	if fmt.Sprint(commRules) != fmt.Sprint(fsRules) || fmt.Sprint(fsRules) != fmt.Sprint(portalRules) {
		t.Fatalf("installed state diverges:\n community %v\n flowspec  %v\n portal    %v",
			commRules, fsRules, portalRules)
	}
	if len(commRules) != 1 {
		t.Fatalf("installed rules: %v", commRules)
	}
}

func TestCommunityChannelReplaceAndWithdraw(t *testing.T) {
	h := newHarness(t, 2, nil)
	ctl := New(h.config())
	ch := NewCommunityChannel(ctl)
	target := netip.MustParsePrefix("100.0.0.10/32")

	// Announce with a shape signal.
	ch.HandleEvent(routeserver.ControllerEvent{
		Peer: memberName(0), PeerAS: 64512, PathID: 1,
		Announced: []netip.Prefix{target},
		Attrs:     signalAttrs(t, core.ShapeUDPSrcPort(123, 200e6)),
	}, 0)
	ctl.Process(1)
	if got := installedState(t, h, memberName(0)); len(got) != 1 {
		t.Fatalf("after shape: %v", got)
	}
	shapeID := ctl.Active()[0].ID

	// Re-announce with a drop signal: the shape mitigation is withdrawn
	// and the drop installed (the Figure 10c escalation).
	ch.HandleEvent(routeserver.ControllerEvent{
		Peer: memberName(0), PeerAS: 64512, PathID: 1,
		Announced: []netip.Prefix{target},
		Attrs:     signalAttrs(t, core.DropProto(netpkt.ProtoUDP)),
	}, 2)
	ctl.Process(3)
	live := ctl.Active()
	if len(live) != 1 || live[0].ID == shapeID {
		t.Fatalf("after escalation: %+v", live)
	}
	if m, _ := ctl.Get(shapeID); m.State != StateWithdrawn {
		t.Fatalf("shape state: %v", m.State)
	}
	rules := installedState(t, h, memberName(0))
	if len(rules) != 1 {
		t.Fatalf("rules after escalation: %v", rules)
	}

	// Unchanged re-announcement: pure refresh, no churn.
	applied := ctl.AppliedChanges()
	ch.HandleEvent(routeserver.ControllerEvent{
		Peer: memberName(0), PeerAS: 64512, PathID: 1,
		Announced: []netip.Prefix{target},
		Attrs:     signalAttrs(t, core.DropProto(netpkt.ProtoUDP)),
	}, 4)
	ctl.Process(5)
	if ctl.AppliedChanges() != applied {
		t.Fatal("unchanged re-announcement caused churn")
	}

	// Withdrawal tears everything down.
	ch.HandleEvent(routeserver.ControllerEvent{
		Peer: memberName(0), PeerAS: 64512, PathID: 1,
		Withdrawn: []netip.Prefix{target},
	}, 6)
	ctl.Process(7)
	if got := installedState(t, h, memberName(0)); len(got) != 0 {
		t.Fatalf("after withdraw: %v", got)
	}
	if ch.RIBLen() != 0 {
		t.Fatalf("channel RIB: %d", ch.RIBLen())
	}
}

// TestCommunityChannelMultiPathRefCount pins cross-path reference
// counting: mitigation IDs are content-derived, so two ADD-PATH paths
// carrying the same signal request the SAME mitigation — withdrawing
// one path must not tear it down while the other still announces it.
func TestCommunityChannelMultiPathRefCount(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	ch := NewCommunityChannel(ctl)
	target := netip.MustParsePrefix("100.0.0.10/32")
	attrs := signalAttrs(t, core.DropUDPSrcPort(123))

	// The same announcement on two ADD-PATH paths.
	for pathID := uint32(1); pathID <= 2; pathID++ {
		ch.HandleEvent(routeserver.ControllerEvent{
			Peer: memberName(0), PeerAS: 64512, PathID: pathID,
			Announced: []netip.Prefix{target},
			Attrs:     attrs,
		}, 0)
	}
	ctl.Process(1)
	if live := ctl.Active(); len(live) != 1 {
		t.Fatalf("live: %+v", live)
	}
	id := ctl.Active()[0].ID

	// Path 1 goes away: the mitigation survives on path 2's say-so.
	ch.HandleEvent(routeserver.ControllerEvent{
		Peer: memberName(0), PeerAS: 64512, PathID: 1,
		Withdrawn: []netip.Prefix{target},
	}, 2)
	ctl.Process(3)
	if m, _ := ctl.Get(id); m.State != StateActive {
		t.Fatalf("state after first withdraw: %v", m.State)
	}
	if got := ruleCount(t, h, memberName(0)); got != 1 {
		t.Fatalf("rules after first withdraw: %d", got)
	}

	// The last desiring path goes away: now it tears down.
	ch.HandleEvent(routeserver.ControllerEvent{
		Peer: memberName(0), PeerAS: 64512, PathID: 2,
		Withdrawn: []netip.Prefix{target},
	}, 4)
	ctl.Process(5)
	if m, _ := ctl.Get(id); m.State != StateWithdrawn {
		t.Fatalf("state after last withdraw: %v", m.State)
	}
	if got := ruleCount(t, h, memberName(0)); got != 0 {
		t.Fatalf("rules after last withdraw: %d", got)
	}
}

// TestCommunityChannelTTLRefresh pins the keepalive semantics of BGP
// signaling under a controller DefaultTTL: a re-announcement of the
// same path re-arms the TTL clock (no churn), silence lets it expire,
// and an announcement arriving after expiry starts a fresh lifecycle
// even though the channel still tracks the path's desired specs.
func TestCommunityChannelTTLRefresh(t *testing.T) {
	h := newHarness(t, 1, nil)
	cfg := h.config()
	cfg.DefaultTTL = 10
	ctl := New(cfg)
	ch := NewCommunityChannel(ctl)
	target := netip.MustParsePrefix("100.0.0.10/32")
	announce := func(now float64) {
		ch.HandleEvent(routeserver.ControllerEvent{
			Peer: memberName(0), PeerAS: 64512, PathID: 1,
			Announced: []netip.Prefix{target},
			Attrs:     signalAttrs(t, core.DropUDPSrcPort(123)),
		}, now)
	}

	announce(0)
	ctl.Process(1)
	live := ctl.Active()
	if len(live) != 1 || live[0].ExpiresAt != 10 {
		t.Fatalf("after announce: %+v", live)
	}
	id := live[0].ID

	// Re-announcement at t=5 re-arms the clock to 15, applying nothing.
	applied := ctl.AppliedChanges()
	announce(5)
	ctl.Process(6)
	if m, _ := ctl.Get(id); m.ExpiresAt != 15 || m.State != StateActive {
		t.Fatalf("after refresh: %+v", m)
	}
	if ctl.AppliedChanges() != applied {
		t.Fatal("refresh caused churn")
	}

	// Silence past the deadline: the mitigation expires off the port.
	ctl.Process(16)
	if m, _ := ctl.Get(id); m.State != StateExpired {
		t.Fatalf("after silence: %v", m.State)
	}
	if got := ruleCount(t, h, memberName(0)); got != 0 {
		t.Fatalf("rules after expiry: %d", got)
	}

	// The member signals again: a fresh lifecycle reinstalls the rule.
	announce(20)
	ctl.Process(21)
	if m, _ := ctl.Get(id); m.State != StateActive || m.ExpiresAt != 30 {
		t.Fatalf("after re-announce: %+v", m)
	}
	if got := ruleCount(t, h, memberName(0)); got != 1 {
		t.Fatalf("rules after re-announce: %d", got)
	}
}

func TestCommunityChannelPortalLookupFailure(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	ch := NewCommunityChannel(ctl)
	ch.HandleEvent(routeserver.ControllerEvent{
		Peer: memberName(0), PeerAS: 64512, PathID: 1,
		Announced: []netip.Prefix{netip.MustParsePrefix("100.0.0.10/32")},
		Attrs:     signalAttrs(t, core.Custom(42)), // never defined
	}, 0)
	ctl.Process(1)
	if len(ctl.Active()) != 0 {
		t.Fatal("undefined portal rule installed something")
	}
	if len(ctl.Errors()) == 0 {
		t.Fatal("portal lookup failure not recorded")
	}
}

func TestSpecsFromFlowSpecMultiValue(t *testing.T) {
	target := netip.MustParsePrefix("100.0.0.10/32")
	fs := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.DstPrefix(target),
		bgp.Numeric(bgp.FSIPProto, bgp.Eq(uint64(netpkt.ProtoUDP))),
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123), bgp.Eq(11211)),
	}}
	attrs := &bgp.PathAttrs{ExtCommunities: []bgp.ExtCommunity{bgp.TrafficRate(64512, 0)}}
	specs, err := SpecsFromFlowSpec(memberName(0), fs, attrs, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs: %d", len(specs))
	}
	ports := map[int32]bool{}
	for _, s := range specs {
		if s.Channel != ChannelFlowSpec || s.TTL != 30 || s.Target != target {
			t.Fatalf("spec: %+v", s)
		}
		ports[s.Match.SrcPort] = true
	}
	if !ports[123] || !ports[11211] {
		t.Fatalf("ports: %v", ports)
	}

	// Both install as separate mitigations on one controller.
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	for _, s := range specs {
		if _, err := ctl.Request(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Process(1)
	if got := installedState(t, h, memberName(0)); len(got) != 2 {
		t.Fatalf("installed: %v", got)
	}

	// No action community → error; no dst prefix → error.
	if _, err := SpecsFromFlowSpec(memberName(0), fs, &bgp.PathAttrs{}, 0); err == nil {
		t.Fatal("missing action accepted")
	}
	noDst := &bgp.FlowSpec{Components: []bgp.FlowSpecComponent{
		bgp.Numeric(bgp.FSSrcPort, bgp.Eq(123)),
	}}
	if _, err := SpecsFromFlowSpec(memberName(0), noDst, attrs, 0); err == nil {
		t.Fatal("missing dst prefix accepted")
	}
}

func TestSpecFromSignalShapeRate(t *testing.T) {
	spec, err := SpecFromSignal(memberName(0), netip.MustParsePrefix("100.0.0.10/32"),
		core.ShapeUDPSrcPort(123, 200e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Action != fabric.ActionShape || spec.ShapeRateBps != 200e6 {
		t.Fatalf("spec: %+v", spec)
	}
	if spec.Channel != ChannelCommunity {
		t.Fatalf("channel: %v", spec.Channel)
	}
}
