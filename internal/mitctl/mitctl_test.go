package mitctl

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"

	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/irr"
	"stellar/internal/netpkt"
)

// harness is a minimal data plane: n member ports behind a QoS manager
// with a generous hardware budget, each member owning 100.<i>.0.0/24.
type harness struct {
	fab    *fabric.Fabric
	mgr    *core.QoSManager
	router *hw.EdgeRouter
	reg    *irr.Registry
	macs   map[string]netpkt.MAC
	asns   map[string]uint32
}

func memberName(i int) string { return fmt.Sprintf("AS%d", 64512+i) }

func newHarness(t *testing.T, n int, limits *hw.Limits) *harness {
	t.Helper()
	h := &harness{
		fab:  fabric.New(),
		reg:  irr.NewRegistry(),
		macs: make(map[string]netpkt.MAC),
		asns: make(map[string]uint32),
	}
	portIndex := make(map[string]int, n)
	for i := 0; i < n; i++ {
		name := memberName(i)
		mac := netpkt.MAC{0x02, 0, 0, 0, 0, byte(i + 1)}
		if err := h.fab.AddPort(fabric.NewPort(name, mac, 1e9)); err != nil {
			t.Fatal(err)
		}
		h.macs[name] = mac
		h.asns[name] = uint32(64512 + i)
		h.reg.Register(uint32(64512+i), netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(i), 0, 0}), 24))
		portIndex[name] = i
	}
	lim := hw.DefaultEdgeRouterLimits(n, hw.RTBHUnitN)
	if limits != nil {
		lim = *limits
	}
	h.router = hw.NewEdgeRouter(lim)
	h.mgr = core.NewQoSManager(h.fab, h.router, portIndex)
	return h
}

func (h *harness) config() Config {
	return Config{
		Manager:    h.mgr,
		QueueRate:  1000, // effectively unthrottled
		QueueBurst: 1000,
		Validator: &IRRValidator{Registry: h.reg, ASNOf: func(name string) (uint32, bool) {
			asn, ok := h.asns[name]
			return asn, ok
		}},
		MemberMAC: func(name string) (netpkt.MAC, bool) {
			mac, ok := h.macs[name]
			return mac, ok
		},
	}
}

func (h *harness) target(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(i), 0, 10}), 32)
}

// dropSpec is the canonical amplification mitigation for member i.
func dropSpec(i int) Spec {
	m := fabric.MatchAll()
	m.Proto = netpkt.ProtoUDP
	m.SrcPort = 123
	return Spec{
		Requester: memberName(i),
		Target:    netip.PrefixFrom(netip.AddrFrom4([4]byte{100, byte(i), 0, 10}), 32),
		Match:     m,
		Action:    fabric.ActionDrop,
	}
}

func ruleCount(t *testing.T, h *harness, member string) int {
	t.Helper()
	port, err := h.fab.PortByName(member)
	if err != nil {
		t.Fatal(err)
	}
	return port.RuleCount()
}

func TestLifecycleRequestInstallWithdraw(t *testing.T) {
	h := newHarness(t, 2, nil)
	ctl := New(h.config())
	var events []string
	ctl.Subscribe(func(ev Event) { events = append(events, ev.Type.String()) })

	m, err := ctl.Request(dropSpec(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StatePending {
		t.Fatalf("state after request: %v", m.State)
	}
	if m.ID != DeriveID(dropSpec(0)) {
		t.Fatalf("derived ID: %s", m.ID)
	}
	if got := ruleCount(t, h, memberName(0)); got != 0 {
		t.Fatalf("rules before Process: %d", got)
	}

	if n := ctl.Process(1); n != 1 {
		t.Fatalf("applied: %d", n)
	}
	got, ok := ctl.Get(m.ID)
	if !ok || got.State != StateActive || got.InstalledAt != 1 {
		t.Fatalf("after install: %+v", got)
	}
	if rc := ruleCount(t, h, memberName(0)); rc != 1 {
		t.Fatalf("rules installed: %d", rc)
	}
	// The fabric rule carries the mitigation ID as its tag.
	port, _ := h.fab.PortByName(memberName(0))
	if _, err := port.Rule(m.ID); err != nil {
		t.Fatalf("rule not tagged with mitigation ID: %v", err)
	}
	if lats := ctl.Latencies(); len(lats) != 1 || lats[0] != 1 {
		t.Fatalf("latencies: %v", lats)
	}

	if err := ctl.Withdraw(m.ID, memberName(0), 2); err != nil {
		t.Fatal(err)
	}
	ctl.Process(3)
	if rc := ruleCount(t, h, memberName(0)); rc != 0 {
		t.Fatalf("rules after withdraw: %d", rc)
	}
	got, _ = ctl.Get(m.ID)
	if got.State != StateWithdrawn {
		t.Fatalf("final state: %v", got.State)
	}
	want := []string{"requested", "validated", "installed", "withdrawn"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("events: %v, want %v", events, want)
	}
}

func TestTTLExpiryDrivenByProcess(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	spec := dropSpec(0)
	spec.TTL = 5
	m, err := ctl.Request(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExpiresAt != 5 {
		t.Fatalf("ExpiresAt: %v", m.ExpiresAt)
	}
	ctl.Process(1)
	if got, _ := ctl.Get(m.ID); got.State != StateActive {
		t.Fatalf("state: %v", got.State)
	}
	if got, _ := ctl.Get(m.ID); got.TTLRemaining(2) != 3 {
		t.Fatalf("ttl remaining: %v", got.TTLRemaining(2))
	}
	// Before the deadline: nothing happens.
	ctl.Process(4.9)
	if got, _ := ctl.Get(m.ID); got.State != StateActive {
		t.Fatalf("expired early: %v", got.State)
	}
	// The expiry and its rule removal ride the same Process call.
	ctl.Process(5)
	got, _ := ctl.Get(m.ID)
	if got.State != StateExpired {
		t.Fatalf("state at deadline: %v", got.State)
	}
	if rc := ruleCount(t, h, memberName(0)); rc != 0 {
		t.Fatalf("rules after expiry: %d", rc)
	}
}

func TestRefreshIsIdempotent(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	spec := dropSpec(0)
	spec.TTL = 10
	m, err := ctl.Request(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Process(1)
	applied := ctl.AppliedChanges()

	// Re-request at t=6: same content, so nothing new installs and the
	// TTL clock re-arms from 6.
	m2, err := ctl.Request(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != m.ID {
		t.Fatalf("refresh changed ID: %s vs %s", m2.ID, m.ID)
	}
	if m2.ExpiresAt != 16 {
		t.Fatalf("refreshed ExpiresAt: %v", m2.ExpiresAt)
	}
	ctl.Process(7)
	if ctl.AppliedChanges() != applied {
		t.Fatalf("refresh caused churn: %d -> %d changes", applied, ctl.AppliedChanges())
	}
	if rc := ruleCount(t, h, memberName(0)); rc != 1 {
		t.Fatalf("rules after refresh: %d", rc)
	}
	// Without the refresh it would have expired at 10; now it lives.
	ctl.Process(12)
	if got, _ := ctl.Get(m.ID); got.State != StateActive {
		t.Fatalf("state at 12: %v", got.State)
	}
	ctl.Process(16)
	if got, _ := ctl.Get(m.ID); got.State != StateExpired {
		t.Fatalf("state at 16: %v", got.State)
	}
}

func TestExpiryRacingWithdraw(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	spec := dropSpec(0)
	spec.TTL = 5
	m, _ := ctl.Request(spec, 0)
	ctl.Process(1)

	// Expiry fires first; a late withdraw of the already-expired
	// mitigation is a clean no-op, not an error, and the state stays
	// Expired.
	ctl.Process(5)
	if err := ctl.Withdraw(m.ID, memberName(0), 5); err != nil {
		t.Fatalf("withdraw after expiry: %v", err)
	}
	got, _ := ctl.Get(m.ID)
	if got.State != StateExpired {
		t.Fatalf("state: %v", got.State)
	}
	if errs := ctl.Errors(); len(errs) != 0 {
		t.Fatalf("double-removal errors: %v", errs)
	}
	if rc := ruleCount(t, h, memberName(0)); rc != 0 {
		t.Fatalf("rules: %d", rc)
	}

	// The mirror race: withdraw lands just before the TTL deadline; the
	// later Process must not flip the state to Expired or double-remove.
	m2spec := dropSpec(0)
	m2spec.Match.SrcPort = 53
	m2spec.TTL = 5
	m2, _ := ctl.Request(m2spec, 10)
	ctl.Process(11)
	if err := ctl.Withdraw(m2.ID, memberName(0), 14.9); err != nil {
		t.Fatal(err)
	}
	ctl.Process(15)
	got2, _ := ctl.Get(m2.ID)
	if got2.State != StateWithdrawn {
		t.Fatalf("state: %v", got2.State)
	}
	if errs := ctl.Errors(); len(errs) != 0 {
		t.Fatalf("double-removal errors: %v", errs)
	}
}

func TestIRRValidationRejection(t *testing.T) {
	h := newHarness(t, 2, nil)
	ctl := New(h.config())
	// Member 0 tries to blackhole member 1's space: a hijack.
	spec := dropSpec(0)
	spec.Target = h.target(1)
	_, err := ctl.Request(spec, 0)
	if !errors.Is(err, ErrValidation) {
		t.Fatalf("err: %v", err)
	}
	// The rejection is observable in the store; nothing reaches the
	// data plane.
	snap := ctl.Snapshot()
	if len(snap.Mitigations) != 1 || snap.Mitigations[0].State != StateRejected {
		t.Fatalf("snapshot: %+v", snap.Mitigations)
	}
	if snap.Mitigations[0].LastError == "" {
		t.Fatal("rejection lost its reason")
	}
	ctl.Process(1)
	if rc := ruleCount(t, h, memberName(0)); rc != 0 {
		t.Fatalf("rules: %d", rc)
	}
	// An unknown member is rejected the same way.
	ghost := dropSpec(0)
	ghost.Requester = "ghost"
	if _, err := ctl.Request(ghost, 0); !errors.Is(err, ErrValidation) {
		t.Fatalf("ghost err: %v", err)
	}
}

func TestSpecMismatchOnLiveID(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	spec := dropSpec(0)
	spec.ID = "mit:explicit"
	if _, err := ctl.Request(spec, 0); err != nil {
		t.Fatal(err)
	}
	changed := spec
	changed.Match.SrcPort = 53
	if _, err := ctl.Request(changed, 1); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("err: %v", err)
	}
}

func TestWithdrawOwnership(t *testing.T) {
	h := newHarness(t, 2, nil)
	ctl := New(h.config())
	m, _ := ctl.Request(dropSpec(0), 0)
	if err := ctl.Withdraw(m.ID, memberName(1), 1); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign withdraw: %v", err)
	}
	if err := ctl.Withdraw("mit:ghost", memberName(0), 1); !errors.Is(err, ErrUnknownMitigation) {
		t.Fatalf("unknown withdraw: %v", err)
	}
	// Operator tooling (empty requester) bypasses the ownership check.
	if err := ctl.Withdraw(m.ID, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestPerPeerScope(t *testing.T) {
	h := newHarness(t, 3, nil)
	ctl := New(h.config())
	spec := dropSpec(0)
	spec.Scope = ScopePerPeer
	spec.Peers = []string{memberName(1), memberName(2)}
	m, err := ctl.Request(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.RuleIDs) != 2 {
		t.Fatalf("rule IDs: %v", m.RuleIDs)
	}
	ctl.Process(1)
	port, _ := h.fab.PortByName(memberName(0))
	if port.RuleCount() != 2 {
		t.Fatalf("rules: %d", port.RuleCount())
	}
	// Each rule pins one peer's MAC: only their traffic dies.
	for i, peer := range spec.Peers {
		r, err := port.Rule(m.RuleIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Match.SrcMAC == nil || *r.Match.SrcMAC != h.macs[peer] {
			t.Fatalf("rule %s MAC: %v", m.RuleIDs[i], r.Match.SrcMAC)
		}
	}
	// Unknown peer: validation failure.
	bad := dropSpec(0)
	bad.Match.SrcPort = 53
	bad.Scope = ScopePerPeer
	bad.Peers = []string{"ghost"}
	if _, err := ctl.Request(bad, 2); !errors.Is(err, ErrValidation) {
		t.Fatalf("ghost peer: %v", err)
	}
}

func TestAdmissionMaxPerMember(t *testing.T) {
	h := newHarness(t, 1, nil)
	cfg := h.config()
	cfg.MaxActivePerMember = 2
	ctl := New(cfg)
	for port := 0; port < 2; port++ {
		s := dropSpec(0)
		s.Match.SrcPort = int32(123 + port)
		if _, err := ctl.Request(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	over := dropSpec(0)
	over.Match.SrcPort = 999
	if _, err := ctl.Request(over, 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("admission: %v", err)
	}
	// Withdrawing one frees budget.
	if err := ctl.Withdraw(DeriveID(func() Spec { s := dropSpec(0); s.Match.SrcPort = 123; return s }()), memberName(0), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Request(over, 2); err != nil {
		t.Fatalf("after free: %v", err)
	}
}

func TestHardwareAdmissionRejection(t *testing.T) {
	// A router with a 2-criteria TCAM budget: the drop spec needs 3
	// (proto, dst prefix, src port), so the install is refused and the
	// mitigation ends Rejected.
	lim := hw.DefaultEdgeRouterLimits(1, hw.RTBHUnitN)
	lim.L34CriteriaTotal = 2
	h := newHarness(t, 1, &lim)
	ctl := New(h.config())
	m, err := ctl.Request(dropSpec(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Process(1)
	got, _ := ctl.Get(m.ID)
	if got.State != StateRejected {
		t.Fatalf("state: %v", got.State)
	}
	if got.LastError == "" || len(ctl.Errors()) == 0 {
		t.Fatal("hardware rejection lost its reason")
	}
	if rc := ruleCount(t, h, memberName(0)); rc != 0 {
		t.Fatalf("rules: %d", rc)
	}
	// A later withdraw of the rejected mitigation must not emit
	// spurious removals.
	if err := ctl.Withdraw(m.ID, memberName(0), 2); err != nil {
		t.Fatal(err)
	}
	before := len(ctl.Errors())
	ctl.Process(3)
	if len(ctl.Errors()) != before {
		t.Fatalf("withdraw of rejected mitigation produced errors: %v", ctl.Errors())
	}
}

func TestUsageSurvivesRemoval(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	m, _ := ctl.Request(dropSpec(0), 0)
	ctl.Process(1)

	port, _ := h.fab.PortByName(memberName(0))
	attack := fabric.Offer{
		Flow: netpkt.FlowKey{
			SrcMAC: netpkt.MAC{0x02, 0xff, 0, 0, 0, 9},
			Src:    netip.MustParseAddr("198.51.100.9"),
			Dst:    netip.MustParseAddr("100.0.0.10"),
			Proto:  netpkt.ProtoUDP, SrcPort: 123, DstPort: 443,
		},
		Bytes: 1e6, Packets: 1000,
	}
	port.Egress([]fabric.Offer{attack}, 1)

	u, err := ctl.Usage(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if u.DroppedBytes != 1e6 || u.MatchedBytes != 1e6 {
		t.Fatalf("live usage: %+v", u)
	}
	// After withdrawal the rule (and its live counters) are gone, but
	// the mitigation keeps its final tally.
	ctl.Withdraw(m.ID, memberName(0), 2)
	ctl.Process(3)
	u, err = ctl.Usage(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if u.DroppedBytes != 1e6 {
		t.Fatalf("accrued usage: %+v", u)
	}
}

func TestRerequestOverlappingGenerations(t *testing.T) {
	// Withdraw and immediately re-request the same spec before the
	// removal has been applied: the queue holds install#1, remove#1,
	// install#2 and must converge on exactly one installed rule.
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	spec := dropSpec(0)
	m, _ := ctl.Request(spec, 0)
	ctl.Process(1)
	if err := ctl.Withdraw(m.ID, memberName(0), 2); err != nil {
		t.Fatal(err)
	}
	m2, err := ctl.Request(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != m.ID {
		t.Fatalf("IDs: %s vs %s", m2.ID, m.ID)
	}
	ctl.Process(3)
	if rc := ruleCount(t, h, memberName(0)); rc != 1 {
		t.Fatalf("rules after generation overlap: %d", rc)
	}
	got, _ := ctl.Get(m.ID)
	if got.State != StateActive {
		t.Fatalf("state: %v", got.State)
	}
	if errs := ctl.Errors(); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
}

func TestSnapshotVersioning(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctl := New(h.config())
	v0 := ctl.Snapshot().Version
	m, _ := ctl.Request(dropSpec(0), 0)
	v1 := ctl.Snapshot().Version
	if v1 <= v0 {
		t.Fatalf("version did not advance: %d -> %d", v0, v1)
	}
	ctl.Process(1)
	v2 := ctl.Snapshot().Version
	if v2 <= v1 {
		t.Fatalf("install did not advance version: %d -> %d", v1, v2)
	}
	// No transitions, no version change.
	if v3 := ctl.Snapshot().Version; v3 != v2 {
		t.Fatalf("idle version churn: %d -> %d", v2, v3)
	}
	snap := ctl.Snapshot()
	if len(snap.Mitigations) != 1 || snap.Mitigations[0].ID != m.ID {
		t.Fatalf("snapshot: %+v", snap)
	}
	// Prune drops finals only.
	ctl.Withdraw(m.ID, memberName(0), 2)
	if n := ctl.Prune(ctl.Snapshot().Version + 1); n != 1 {
		t.Fatalf("pruned: %d", n)
	}
	if len(ctl.Snapshot().Mitigations) != 0 {
		t.Fatal("prune left finals behind")
	}
}

func TestQueuePacingLatency(t *testing.T) {
	// A 1-change/s queue with burst 1: three requests at t=0 install at
	// t=1, 2, 3 — the signal-to-configuration delay of Figure 10(b).
	h := newHarness(t, 1, nil)
	cfg := h.config()
	cfg.QueueRate = 1
	cfg.QueueBurst = 1
	ctl := New(cfg)
	var ids []string
	for i := 0; i < 3; i++ {
		s := dropSpec(0)
		s.Match.SrcPort = int32(100 + i)
		m, err := ctl.Request(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
	}
	installed := func() int {
		n := 0
		for _, id := range ids {
			if m, _ := ctl.Get(id); m.State == StateActive {
				n++
			}
		}
		return n
	}
	for tick := 1; tick <= 3; tick++ {
		ctl.Process(float64(tick))
		if got := installed(); got != tick {
			t.Fatalf("installed after t=%d: %d", tick, got)
		}
	}
	lats := ctl.Latencies()
	if len(lats) != 3 || lats[0] != 1 || lats[1] != 2 || lats[2] != 3 {
		t.Fatalf("latencies: %v", lats)
	}
}
