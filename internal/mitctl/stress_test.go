package mitctl

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressConcurrentLifecycle hammers one controller with concurrent
// requesters, withdrawers, a ticking Process clock and store readers.
// Run with -race; the invariant checked at the end is convergence: after
// every requester finishes and everything is withdrawn and processed,
// the data plane holds zero rules and the store holds no live
// mitigations.
func TestStressConcurrentLifecycle(t *testing.T) {
	const (
		members    = 8
		perMember  = 40
		processors = 2
	)
	h := newHarness(t, members, nil)
	ctl := New(h.config())
	ctl.Subscribe(func(Event) {}) // exercise the event path too

	// The virtual clock only moves forward.
	var clock atomic.Int64
	now := func() float64 { return float64(clock.Add(1)) * 1e-3 }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < processors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					ctl.Process(now())
					ctl.Snapshot()
				}
			}
		}()
	}
	var requesters sync.WaitGroup
	for i := 0; i < members; i++ {
		requesters.Add(1)
		go func(i int) {
			defer requesters.Done()
			for j := 0; j < perMember; j++ {
				s := dropSpec(i)
				s.Match.SrcPort = int32(1000 + j)
				if j%3 == 0 {
					s.TTL = 0.002 // expires almost immediately
				}
				m, err := ctl.Request(s, now())
				if err != nil {
					t.Error(err)
					return
				}
				ctl.Usage(m.ID)
				if j%2 == 0 {
					if err := ctl.Withdraw(m.ID, s.Requester, now()); err != nil {
						t.Error(err)
						return
					}
				} else {
					// Refresh, then withdraw.
					if _, err := ctl.Request(s, now()); err != nil {
						t.Error(err)
						return
					}
					if err := ctl.Withdraw(m.ID, s.Requester, now()); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	requesters.Wait()
	close(stop)
	wg.Wait()

	// Drain whatever is still queued, far past every TTL.
	final := float64(clock.Load())*1e-3 + 1000
	ctl.Process(final)
	for ctl.PendingChanges() > 0 {
		final++
		ctl.Process(final)
	}
	if live := ctl.Active(); len(live) != 0 {
		t.Fatalf("live mitigations after convergence: %d", len(live))
	}
	for i := 0; i < members; i++ {
		if rc := ruleCount(t, h, memberName(i)); rc != 0 {
			t.Fatalf("member %d holds %d rules after convergence", i, rc)
		}
	}
	if errs := ctl.Errors(); len(errs) != 0 {
		t.Fatalf("apply errors under stress: %v", errs[:min(3, len(errs))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
