package mitctl_test

import (
	"fmt"
	"net/netip"

	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/hw"
	"stellar/internal/irr"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
)

// ExampleController walks the full mitigation lifecycle: a member
// declares a Spec (drop NTP reflection toward its /32 for 60 s), the
// controller validates it against the IRR, paces the install through
// the change queue, reports per-mitigation telemetry, and expires it
// when the TTL runs out — every transition visible on the event stream.
func ExampleController() {
	// Data plane: the victim's 1 Gbps port behind a QoS manager.
	fab := fabric.New()
	victimMAC := netpkt.MAC{0x02, 0, 0, 0, 0, 1}
	fab.AddPort(fabric.NewPort("AS64512", victimMAC, 1e9))
	router := hw.NewEdgeRouter(hw.DefaultEdgeRouterLimits(1, hw.RTBHUnitN))
	mgr := core.NewQoSManager(fab, router, map[string]int{"AS64512": 0})

	// Control plane: the victim registered 100.10.10.0/24 in the IRR.
	registry := irr.NewRegistry()
	registry.Register(64512, netip.MustParsePrefix("100.10.10.0/24"))
	ctl := mitctl.New(mitctl.Config{
		Manager:   mgr,
		QueueRate: 1000, QueueBurst: 1000,
		Validator: &mitctl.IRRValidator{
			Registry: registry,
			ASNOf:    func(string) (uint32, bool) { return 64512, true },
		},
	})
	ctl.Subscribe(func(ev mitctl.Event) {
		fmt.Printf("t=%g %s %s\n", ev.Time, ev.Mitigation.ID, ev.Type)
	})

	// Declare the mitigation: drop UDP/123 toward the attacked /32.
	match := fabric.MatchAll()
	match.Proto = netpkt.ProtoUDP
	match.SrcPort = 123
	spec := mitctl.Spec{
		Requester: "AS64512",
		Target:    netip.MustParsePrefix("100.10.10.10/32"),
		Match:     match,
		Action:    fabric.ActionDrop,
		TTL:       60,
	}
	m, err := ctl.Request(spec, 0)
	if err != nil {
		fmt.Println("request:", err)
		return
	}

	// The tick loop drives the queue and the TTL clock.
	ctl.Process(1)

	// Attack traffic hits the installed rule; the mitigation's tagged
	// counters aggregate its effect.
	port, _ := fab.PortByName("AS64512")
	port.Egress([]fabric.Offer{{
		Flow: netpkt.FlowKey{
			SrcMAC: netpkt.MAC{0x02, 0xff, 0, 0, 0, 9},
			Src:    netip.MustParseAddr("198.51.100.9"),
			Dst:    netip.MustParseAddr("100.10.10.10"),
			Proto:  netpkt.ProtoUDP, SrcPort: 123, DstPort: 443,
		},
		Bytes: 5e6, Packets: 5000,
	}}, 1)
	usage, _ := ctl.Usage(m.ID)
	fmt.Printf("dropped %.0f MB\n", float64(usage.DroppedBytes)/1e6)

	// The TTL clock expires the mitigation; the rule is removed.
	ctl.Process(61)
	final, _ := ctl.Get(m.ID)
	fmt.Printf("rules left: %d, state %s\n", port.RuleCount(), final.State)
	// Output:
	// t=0 mit:AS64512:100.10.10.10/32:7e959b48 requested
	// t=0 mit:AS64512:100.10.10.10/32:7e959b48 validated
	// t=1 mit:AS64512:100.10.10.10/32:7e959b48 installed
	// dropped 5 MB
	// t=61 mit:AS64512:100.10.10.10/32:7e959b48 expired
	// rules left: 0, state expired
}
