package mitctl

import (
	"fmt"
	"net/netip"

	"stellar/internal/irr"
)

// Validator decides whether a member may mitigate traffic toward a
// target prefix. It is the Validate stage of the lifecycle: a member
// must only be able to blackhole address space it actually originates
// (Section 4.3's routing-hygiene argument applied to mitigations).
type Validator interface {
	Validate(requester string, target netip.Prefix) error
}

// IRRValidator authorizes mitigation targets against the IRR database:
// the requesting member's AS must have registered the target prefix or
// a covering less-specific (route/route6 objects, footnote 3).
type IRRValidator struct {
	// Registry is the IRR database (shared with the route server's
	// import policy, so both layers agree).
	Registry *irr.Registry
	// ASNOf resolves a member name to its AS number.
	ASNOf func(member string) (uint32, bool)
}

// Validate implements Validator.
func (v *IRRValidator) Validate(requester string, target netip.Prefix) error {
	if v.Registry == nil || v.ASNOf == nil {
		return fmt.Errorf("irr validator misconfigured (nil registry or ASN resolver)")
	}
	asn, ok := v.ASNOf(requester)
	if !ok {
		return fmt.Errorf("unknown member %s", requester)
	}
	if !v.Registry.Authorized(asn, target) {
		return fmt.Errorf("prefix %s not registered in IRR for AS%d", target, asn)
	}
	return nil
}
