// Package stellar is a from-scratch Go reproduction of "Stellar: Network
// Attack Mitigation using Advanced Blackholing" (Dietzel, Wichtlhuber,
// Smaragdakis, Feldmann — CoNEXT 2018): the Advanced Blackholing system
// together with every substrate it runs on — a BGP-4 wire-format stack
// with communities/extended-communities/ADD-PATH, an IXP route server
// with IRR/RPKI/bogon import hygiene, an emulated switching fabric with
// TCAM-budgeted QoS filtering, traffic generators for amplification
// attacks and benign services, a flow monitor, and the baseline
// mitigation techniques (RTBH, ACL, Flowspec, TSS) the paper compares
// against.
//
// See README.md for the build/test instructions and ARCHITECTURE.md for
// the layer map, the discrete-time simulation model and the data flow of
// an attack tick. The benchmarks in bench_test.go regenerate every table
// and figure of the evaluation and measure both scaling tentpoles
// against their retained baselines: the route server's sharded update
// pipeline vs the single-lock design, and the fabric's compiled
// lock-free classifier vs the linear rule scan; cmd/stellar-lab prints
// the experiments and emits both sets of numbers as JSON.
package stellar
