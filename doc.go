// Package stellar is a from-scratch Go reproduction of "Stellar: Network
// Attack Mitigation using Advanced Blackholing" (Dietzel, Wichtlhuber,
// Smaragdakis, Feldmann — CoNEXT 2018): the Advanced Blackholing system
// together with every substrate it runs on — a BGP-4 wire-format stack
// with communities/extended-communities/ADD-PATH, an IXP route server
// with IRR/RPKI/bogon import hygiene, an emulated switching fabric with
// TCAM-budgeted QoS filtering, traffic generators for amplification
// attacks and benign services, a flow monitor, and the baseline
// mitigation techniques (RTBH, ACL, Flowspec, TSS) the paper compares
// against.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate
// every table and figure of the evaluation; cmd/stellar-lab prints them.
package stellar
