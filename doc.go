// Package stellar is a from-scratch Go reproduction of "Stellar: Network
// Attack Mitigation using Advanced Blackholing" (Dietzel, Wichtlhuber,
// Smaragdakis, Feldmann — CoNEXT 2018): the Advanced Blackholing system
// together with every substrate it runs on — a BGP-4 wire-format stack
// with communities/extended-communities/ADD-PATH, an IXP route server
// with IRR/RPKI/bogon import hygiene, an emulated switching fabric with
// TCAM-budgeted QoS filtering, traffic generators for amplification
// attacks and benign services, a flow monitor, and the baseline
// mitigation techniques (RTBH, ACL, Flowspec, TSS) the paper compares
// against.
//
// See README.md for the architecture overview and build/test
// instructions. The benchmarks in bench_test.go regenerate every table
// and figure of the evaluation and measure the route server's sharded
// update pipeline against its single-lock baseline; cmd/stellar-lab
// prints the experiments and emits throughput numbers as JSON.
package stellar
