// rtbh-vs-stellar runs the paper's two controlled booter experiments
// head to head on identical infrastructure: Figure 3(c) (classic RTBH —
// most of the attack survives because ~70% of peers ignore the signal)
// and Figure 10(c) (Stellar — shape for telemetry, then drop to zero).
//
// Run with: go run ./examples/rtbh-vs-stellar
package main

import (
	"fmt"
	"log"

	"stellar/internal/experiments"
)

func main() {
	rtbhCfg := experiments.DefaultFig3cConfig()
	rtbhCfg.Members = 200 // laptop-sized population, same honoring ratio
	rtbh, err := experiments.Fig3c(rtbhCfg)
	if err != nil {
		log.Fatal(err)
	}

	stellarCfg := experiments.DefaultFig10cConfig()
	stellarCfg.Members = 200
	stl, err := experiments.Fig10c(stellarCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rtbh.Format())
	fmt.Println()
	fmt.Print(stl.Format())

	fmt.Println("\n=== Head to head ===")
	fmt.Printf("%-28s %12s %12s\n", "", "RTBH", "Stellar")
	fmt.Printf("%-28s %9.0f Mbps %9.0f Mbps\n", "attack at steady state", rtbh.PeakBps/1e6, stl.PeakBps/1e6)
	fmt.Printf("%-28s %9.0f Mbps %9.0f Mbps\n", "after final mitigation", rtbh.ResidualBps/1e6, stl.FinalBps/1e6)
	fmt.Printf("%-28s %11.0f%% %11.0f%%\n", "attack removed",
		100*(1-rtbh.ResidualBps/rtbh.PeakBps), 100*(1-stl.FinalBps/stl.PeakBps))
	fmt.Printf("%-28s %12.0f %12.0f\n", "peers before", rtbh.PeersBefore, stl.PeersPeak)
	fmt.Printf("%-28s %12.0f %12.0f\n", "peers after", rtbh.PeersAfter, stl.PeersFinal)
}
