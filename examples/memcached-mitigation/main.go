// memcached-mitigation replays the paper's motivating incident (Section
// 2.3, Figure 2c): the 2018-04-29 memcached amplification attack against
// a web service, where RTBH would have blackholed the legitimate HTTPS
// traffic along with the attack. It then applies the fix the paper
// argues for — a custom portal rule dropping only UDP source port 11211
// — and shows the port mix recovering.
//
// Run with: go run ./examples/memcached-mitigation
package main

import (
	"fmt"
	"log"
	"net/netip"

	"stellar/internal/experiments"
	"stellar/internal/fabric"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

func main() {
	// Part 1: the measurement view — regenerate Figure 2(c)'s port-share
	// series from the synthetic incident workload.
	fig := experiments.Fig2c(experiments.DefaultFig2cConfig())
	fmt.Print(fig.Format())

	// Part 2: the same incident on the emulated IXP, mitigated with a
	// customer-portal rule referenced from BGP (SelCustom signaling).
	members := member.MakePopulation(member.PopulationConfig{
		N: 45, HonoringFraction: 0.3, PortCapacityBps: 10e9, Seed: 5,
	})
	victim := members[0]
	victim.PortCapacityBps = 10e9 // large port; the attack is 40 Gbps
	x, err := ixp.Build(ixp.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		Members:          members,
		EnableStellar:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		log.Fatal(err)
	}
	target := victim.Prefixes[0].Addr().Next()
	host := netip.PrefixFrom(target, 32)

	// Registered once in the self-service portal: "drop memcached".
	tmpl := fabric.MatchAll()
	tmpl.Proto = netpkt.ProtoUDP
	tmpl.SrcPort = 11211
	ruleID := x.Mitigations.Portal().Define(victim.Name, tmpl, fabric.ActionDrop, 0)
	fmt.Printf("\nportal: registered custom rule #%d for %s (drop UDP src 11211)\n\n", ruleID, victim.Name)

	rng := stats.NewRand(9)
	peers := ixp.PeersOf(members[1:])
	web := traffic.NewWebService(target, peers[:8], 2e9, rng)
	attack := traffic.NewAttack(traffic.VectorMemcached, target, peers, 40e9, 3, 1<<30, rng)
	attack.RampTicks = 2

	report := func(tick int, label string) {
		offers := append(attack.Offers(tick, 1), web.Offers(tick, 1)...)
		reports, err := x.Tick(fabric.TickOffers{victim.Name: offers}, 1)
		if err != nil {
			log.Fatal(err)
		}
		r := reports[victim.Name]
		var memc, webB float64
		for flow, bytes := range r.Result.DeliveredByFlow {
			if flow.Proto == netpkt.ProtoUDP && flow.SrcPort == 11211 {
				memc += bytes
			} else {
				webB += bytes
			}
		}
		fmt.Printf("%-22s delivered: memcached %8.0f Mbps | web %6.0f Mbps | port congestion loss %6.0f Mbps\n",
			label, memc*8/1e6, webB*8/1e6, r.Result.CongestionDroppedBytes*8/1e6)
	}

	report(1, "before attack")
	report(6, "attack, no mitigation")

	// Activate the portal rule against the attacked /32: the rule
	// template compiles into a lifecycle-managed mitigation, exactly as
	// a SelCustom BGP signal referencing the same rule ID would.
	if _, err := x.Mitigations.RequestFromPortal(victim.Name, ruleID, host, 0, x.Clock()); err != nil {
		log.Fatal(err)
	}
	report(8, "attack, custom rule")
	report(9, "attack, custom rule")
}
