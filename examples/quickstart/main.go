// Quickstart: build an in-memory IXP, congest a member's port with an
// NTP amplification attack, and mitigate it with one declarative
// mitigation request — the end-to-end flow of Sections 3 and 5.3,
// executed by the stage-graph engine (attack and mitigation on one
// pipelined timeline).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

func main() {
	// 1. An IXP with 50 members; the victim has a 1 Gbps port.
	members := member.MakePopulation(member.PopulationConfig{
		N: 50, HonoringFraction: 0.3, PortCapacityBps: 10e9, Seed: 1,
	})
	victim := members[0]
	victim.PortCapacityBps = 1e9

	x, err := ixp.Build(ixp.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		Members:          members,
		EnableStellar:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The victim announces its /24 through the route server.
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		log.Fatal(err)
	}
	target := victim.Prefixes[0].Addr().Next() // the web service's /32

	// 3. Workloads: 400 Mbps of legitimate web traffic plus a 3 Gbps NTP
	//    reflection attack from 30 peers.
	rng := stats.NewRand(7)
	peers := ixp.PeersOf(members[1:])
	web := traffic.NewWebService(target, peers[:5], 4e8, rng)
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers[:30], 3e9, 0, 1<<30, rng)
	attack.RampTicks = 0

	// 4. The run is one engine timeline: three congested ticks, then the
	//    victim declares "drop UDP source port 123 toward my /32" — one
	//    lifecycle-managed mitigation request, the API equivalent of the
	//    Advanced Blackholing BGP community.
	match := fabric.MatchAll()
	match.Proto = netpkt.ProtoUDP
	match.SrcPort = 123
	driver := engine.NewSourcesDriver(
		[]engine.VictimSpec{{Port: victim.Name}},
		[][]engine.Source{{attack, web}},
	).AddEvents(engine.Event{
		Tick: 3, Name: "signal drop UDP/123",
		Do: func() error {
			_, err := x.RequestMitigation(mitctl.Spec{
				Requester: victim.Name,
				Target:    netip.PrefixFrom(target, 32),
				Match:     match,
				Action:    fabric.ActionDrop,
			})
			return err
		},
	})
	series, err := engine.New(engine.Config{
		Driver:    driver,
		Control:   x,
		DataPlane: x,
		Ticks:     7,
		Dt:        1,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Attack on; mitigation signaled at t=3 (applies with the one-tick delay):")
	for _, s := range series[0].Samples {
		fmt.Printf("  t=%2ds offered %6.0f Mbps | delivered %6.0f Mbps | dropped-by-rule %6.0f Mbps | congestion-lost %5.0f Mbps\n",
			s.Tick, s.OfferedBps/1e6, s.DeliveredBps/1e6,
			s.RuleDroppedBps/1e6, s.CongestionDroppedBps/1e6)
	}

	fmt.Printf("\nStellar applied %d configuration change(s).\n", x.Mitigations.AppliedChanges())

	// The mitigation is a first-class lifecycle object: the looking
	// glass lists it with its owner and cumulative effect.
	fmt.Print(x.RS.GlassMitigations())
}
