// Quickstart: build an in-memory IXP, congest a member's port with an
// NTP amplification attack, and mitigate it with a single Advanced
// Blackholing announcement — the end-to-end flow of Sections 3 and 5.3.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"stellar/internal/core"
	"stellar/internal/fabric"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

func main() {
	// 1. An IXP with 50 members; the victim has a 1 Gbps port.
	members := member.MakePopulation(member.PopulationConfig{
		N: 50, HonoringFraction: 0.3, PortCapacityBps: 10e9, Seed: 1,
	})
	victim := members[0]
	victim.PortCapacityBps = 1e9

	x, err := ixp.Build(ixp.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		Members:          members,
		EnableStellar:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The victim announces its /24 through the route server.
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		log.Fatal(err)
	}
	target := victim.Prefixes[0].Addr().Next() // the web service's /32

	// 3. Workloads: 400 Mbps of legitimate web traffic plus a 3 Gbps NTP
	//    reflection attack from 30 peers.
	rng := stats.NewRand(7)
	peers := ixp.PeersOf(members[1:])
	web := traffic.NewWebService(target, peers[:5], 4e8, rng)
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers[:30], 3e9, 0, 1<<30, rng)
	attack.RampTicks = 0

	tick := func(n int) {
		for i := 0; i < n; i++ {
			offers := append(attack.Offers(i, 1), web.Offers(i, 1)...)
			reports, err := x.Tick(fabric.TickOffers{victim.Name: offers}, 1)
			if err != nil {
				log.Fatal(err)
			}
			r := reports[victim.Name]
			fmt.Printf("  t=%2.0fs offered %6.0f Mbps | delivered %6.0f Mbps | dropped-by-rule %6.0f Mbps | congestion-lost %5.0f Mbps\n",
				x.Clock(), r.OfferedBytes*8/1e6, r.Result.DeliveredBytes*8/1e6,
				r.Result.RuleDroppedBytes*8/1e6, r.Result.CongestionDroppedBytes*8/1e6)
		}
	}

	fmt.Println("Attack on, no mitigation (port congested, web traffic collateral):")
	tick(3)

	// 4. One BGP announcement mitigates it: the victim tags its /32 with
	//    the Advanced Blackholing community "drop UDP source port 123".
	host := netip.PrefixFrom(target, 32)
	if err := x.Announce(victim.Name, host, nil, []core.RuleSpec{core.DropUDPSrcPort(123)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAfter signaling IXP:2:123 (drop UDP/123 toward the /32):")
	tick(3)

	fmt.Printf("\nStellar applied %d configuration change(s); the signaling channel tracks %d path(s).\n",
		x.Mitigations.AppliedChanges(), x.Community.RIBLen())

	// The mitigation is a first-class lifecycle object: the looking
	// glass lists it with its owner and cumulative effect.
	fmt.Print(x.RS.GlassMitigations())
}
