// telemetry-shaping demonstrates the feedback loop Advanced Blackholing
// enables and RTBH cannot (Section 3.1, "Telemetry"): the victim shapes
// the attack to a 200 Mbps telemetry sample instead of dropping it, then
// watches the shaped residue through the rule's counters to decide when
// the attack is over — no blind "probe by removing the blackhole".
//
// Run with: go run ./examples/telemetry-shaping
package main

import (
	"fmt"
	"log"
	"net/netip"

	"stellar/internal/fabric"
	"stellar/internal/ixp"
	"stellar/internal/member"
	"stellar/internal/mitctl"
	"stellar/internal/netpkt"
	"stellar/internal/stats"
	"stellar/internal/traffic"
)

func main() {
	members := member.MakePopulation(member.PopulationConfig{
		N: 40, HonoringFraction: 0.3, PortCapacityBps: 10e9, Seed: 3,
	})
	victim := members[0]
	victim.PortCapacityBps = 1e9
	x, err := ixp.Build(ixp.Config{
		ASN:              6695,
		BlackholeNextHop: netip.MustParseAddr("80.81.193.66"),
		Members:          members,
		EnableStellar:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := x.Announce(victim.Name, victim.Prefixes[0], nil, nil); err != nil {
		log.Fatal(err)
	}
	target := victim.Prefixes[0].Addr().Next()
	host := netip.PrefixFrom(target, 32)

	rng := stats.NewRand(11)
	peers := ixp.PeersOf(members[1:])
	// Attack runs from t=5 to t=40, then the booter subscription expires.
	attack := traffic.NewAttack(traffic.VectorNTP, target, peers[:25], 2e9, 5, 40, rng)
	web := traffic.NewWebService(target, peers[:4], 3e8, rng)

	// Shape UDP/123 to 200 Mbps from the start: attack traffic becomes a
	// bounded telemetry sample. One declarative request enters the
	// lifecycle and returns the mitigation we can address directly —
	// the same installed state a BGP-community or portal signal would
	// produce.
	match := fabric.MatchAll()
	match.Proto = netpkt.ProtoUDP
	match.SrcPort = 123
	mit, err := x.RequestMitigation(mitctl.Spec{
		Requester:    victim.Name,
		Target:       host,
		Match:        match,
		Action:       fabric.ActionShape,
		ShapeRateBps: 200e6,
	})
	if err != nil {
		log.Fatal(err)
	}
	mitID := mit.ID

	var lastMatched int64
	quietTicks := 0
	withdrawn := false
	for tick := 0; tick < 60; tick++ {
		offers := append(attack.Offers(tick, 1), web.Offers(tick, 1)...)
		if _, err := x.Tick(fabric.TickOffers{victim.Name: offers}, 1); err != nil {
			log.Fatal(err)
		}

		// Telemetry: the controller's per-mitigation counter roll-up
		// (Section 3.1) — live while installed, final after removal.
		cs, err := x.Mitigations.Usage(mitID)
		if err != nil {
			continue // not requested yet
		}
		deltaMbps := float64(cs.MatchedBytes-lastMatched) * 8 / 1e6
		lastMatched = cs.MatchedBytes
		if tick%5 == 0 {
			fmt.Printf("t=%2d attack-match %7.0f Mbps | sampled-through %6.2f GB | dropped %6.2f GB\n",
				tick, deltaMbps, float64(cs.ShapedResidue)/1e9, float64(cs.DroppedBytes)/1e9)
		}

		// Feedback decision: after 10 quiet seconds, the attack is over —
		// withdraw the rule without ever exposing the port to a live attack.
		if deltaMbps < 1 {
			quietTicks++
		} else {
			quietTicks = 0
		}
		if quietTicks >= 10 && !withdrawn {
			fmt.Printf("t=%2d telemetry shows the attack ended; withdrawing the mitigation\n", tick)
			if err := x.WithdrawMitigation(mitID, victim.Name); err != nil {
				log.Fatal(err)
			}
			withdrawn = true
		}
	}
	if !withdrawn {
		log.Fatal("telemetry loop never detected the attack end")
	}
	if m, ok := x.Mitigations.Get(mitID); ok {
		fmt.Printf("final lifecycle state: %s\n", m.State)
	}
	fmt.Println("done: rule removed based on telemetry, not guesswork")
}
