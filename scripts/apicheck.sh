#!/usr/bin/env sh
# apicheck.sh — exported-API surface check (gorelease-lite).
#
# Dumps every package's exported declarations with `go doc -short` and
# diffs the result against the committed golden file api/stellar.api.
# CI runs this on every push/PR, so a change to the exported API shows
# up as an explicit golden-file diff in review instead of sliding in
# silently.
#
#   scripts/apicheck.sh          # verify (CI mode); non-zero on drift
#   scripts/apicheck.sh -update  # regenerate the golden file
set -eu
cd "$(dirname "$0")/.."
golden="api/stellar.api"

dump() {
	echo "# Exported API surface. Regenerate with scripts/apicheck.sh -update."
	# Test-only packages (no non-test Go files) have no doc surface.
	for pkg in $(go list -f '{{if .GoFiles}}{{.ImportPath}}{{end}}' ./... | LC_ALL=C sort); do
		echo
		echo "== $pkg"
		go doc -short "$pkg"
	done
}

case "${1:-}" in
-update)
	mkdir -p api
	dump >"$golden"
	echo "apicheck: wrote $golden"
	;;
"")
	if ! dump | diff -u "$golden" -; then
		echo >&2
		echo "apicheck: exported API surface changed." >&2
		echo "apicheck: review the diff above; if intended, run scripts/apicheck.sh -update and commit $golden." >&2
		exit 1
	fi
	echo "apicheck: API surface matches $golden"
	;;
*)
	echo "usage: scripts/apicheck.sh [-update]" >&2
	exit 2
	;;
esac
