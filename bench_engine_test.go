package stellar_test

// Engine-pipeline benchmarks: the stage-graph runtime (internal/engine,
// double-buffered ticks on a shared worker pool) against the serial
// driver-pulled ixp.Tick loop — the pre-engine driver shape where every
// tick generates fresh offer slices, runs one synchronous ixp.Tick
// (materialized DeliveredByFlow maps), feeds a map-based collector one
// record per delivered flow and walks the map for the active-peer
// count, with every stage finishing before the next tick starts. Both
// run at GOMAXPROCS=4, the acceptance configuration; the bar is
// pipeline >= 1.5x serial, and TestEnginePipelineMatchesSerialTick pins
// the two paths to byte-identical per-tick delivered/dropped counters
// first, so the speedup is measured on provably equal work.

import (
	"fmt"
	"runtime"
	"testing"

	"stellar/internal/engine"
	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/ixp"
	"stellar/internal/member"
)

// tickCounters is one victim-tick's data-plane account, the fields the
// equivalence assertion compares bit for bit.
type tickCounters struct {
	offered, nulled, delivered, ruleDrop, shapeDrop, congDrop float64
}

// serialTickLoop drives the workload through the serial ixp.Tick path
// and returns per-victim per-tick counters.
func serialTickLoop(tb testing.TB, x *ixp.IXP, members []*member.Member, sources [][]ixp.Source, ticks int) [][]tickCounters {
	tb.Helper()
	const peerMinBytes = 1e3 / 8
	out := make([][]tickCounters, scenarioBenchVictims)
	mons := make([]*flowmon.MapCollector, scenarioBenchVictims)
	for v := range out {
		out[v] = make([]tickCounters, 0, ticks)
		mons[v] = flowmon.NewMapCollector()
	}
	for tick := 0; tick < ticks; tick++ {
		offers := make(fabric.TickOffers, scenarioBenchVictims)
		for v := 0; v < scenarioBenchVictims; v++ {
			var os []fabric.Offer
			for _, src := range sources[v] {
				os = append(os, src.Offers(tick, 1)...)
			}
			offers[members[v].Name] = os
		}
		reports, err := x.Tick(offers, 1)
		if err != nil {
			tb.Fatal(err)
		}
		for v := 0; v < scenarioBenchVictims; v++ {
			rep := reports[members[v].Name]
			for flow, bytes := range rep.Result.DeliveredByFlow {
				mons[v].Observe(flowmon.Record{Bin: tick, Key: flow, Bytes: bytes})
			}
			_ = x.ActivePeers(rep.Result, peerMinBytes)
			out[v] = append(out[v], tickCounters{
				offered:   rep.OfferedBytes,
				nulled:    rep.NulledBytes,
				delivered: rep.Result.DeliveredBytes,
				ruleDrop:  rep.Result.RuleDroppedBytes,
				shapeDrop: rep.Result.ShaperDroppedBytes,
				congDrop:  rep.Result.CongestionDroppedBytes,
			})
		}
	}
	return out
}

// engineRun drives the identical workload through the stage-graph
// runtime at the given pipeline depth and pool size (0: the engine
// defaults) and converts the sample series back to per-tick counters.
func engineRun(tb testing.TB, x *ixp.IXP, members []*member.Member, sources [][]ixp.Source, ticks, depth, workers int) [][]tickCounters {
	tb.Helper()
	specs := make([]engine.VictimSpec, scenarioBenchVictims)
	srcs := make([][]engine.Source, scenarioBenchVictims)
	for v := 0; v < scenarioBenchVictims; v++ {
		specs[v] = engine.VictimSpec{Port: members[v].Name}
		srcs[v] = sources[v]
	}
	eng := engine.New(engine.Config{
		Driver:       engine.NewSourcesDriver(specs, srcs),
		Control:      x,
		DataPlane:    x,
		Ticks:        ticks,
		Dt:           1,
		Depth:        depth,
		Workers:      workers,
		MemberFilter: x.MemberFilter(),
	})
	series, err := eng.Run()
	if err != nil {
		tb.Fatal(err)
	}
	out := make([][]tickCounters, scenarioBenchVictims)
	for v := range series {
		out[v] = make([]tickCounters, 0, len(series[v].Samples))
		for _, s := range series[v].Samples {
			out[v] = append(out[v], tickCounters{
				offered:   s.OfferedBps / 8,
				nulled:    s.NulledBps / 8,
				delivered: s.DeliveredBps / 8,
				ruleDrop:  s.RuleDroppedBps / 8,
				shapeDrop: s.ShaperDroppedBps / 8,
				congDrop:  s.CongestionDroppedBps / 8,
			})
		}
	}
	return out
}

// TestEnginePipelineMatchesSerialTick pins the pipelined engine to the
// serial ixp.Tick loop on the bench workload: every per-tick
// delivered/dropped counter of every victim must be byte-identical
// (exact float equality, no tolerance) at every pipeline depth — 1
// (fully serial), 2 (the default) and 4 (deep, multiple fold batches
// in flight on the pool) — so BenchmarkEnginePipeline and its baseline
// measure provably equal work at every depth it sweeps. Workers is
// pinned to 4 so the parallel fold path engages even on one CPU.
func TestEnginePipelineMatchesSerialTick(t *testing.T) {
	const ticks = 25
	xs, membersS, sourcesS := scenarioBenchSetup(t)
	serial := serialTickLoop(t, xs, membersS, sourcesS, ticks)

	for _, depth := range []int{1, 2, 4} {
		xe, membersE, sourcesE := scenarioBenchSetup(t)
		pipeline := engineRun(t, xe, membersE, sourcesE, ticks, depth, 4)

		for v := range serial {
			if len(pipeline[v]) != len(serial[v]) {
				t.Fatalf("depth %d victim %d: %d vs %d ticks", depth, v, len(pipeline[v]), len(serial[v]))
			}
			for i := range serial[v] {
				if pipeline[v][i] != serial[v][i] {
					t.Fatalf("depth %d victim %d tick %d: engine %+v != serial %+v",
						depth, v, i, pipeline[v][i], serial[v][i])
				}
			}
		}
	}
}

// deliveredSum collapses a run's counters to total delivered bytes,
// the cross-depth identity the benchmark asserts.
func deliveredSum(out [][]tickCounters) float64 {
	var sum float64
	for _, ticks := range out {
		for _, c := range ticks {
			sum += c.delivered
		}
	}
	return sum
}

// BenchmarkEnginePipeline measures the stage-graph runtime end to end
// — ticks per second across all victims — once per pipeline depth.
// depth=1 is the no-overlap floor, depth=2 the default double buffer,
// depth=4 the deep pipeline with multiple fold batches in flight; the
// acceptance bar (depth 4 >= 1.2x depth 1 flows/s at GOMAXPROCS=4) is
// enforced by `stellar-lab bench -check` where CPU count is known, but
// every sub-benchmark here asserts the runs deliver identical bytes so
// any ratio read off this sweep compares provably equal work.
func BenchmarkEnginePipeline(b *testing.B) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var refDelivered float64
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			x, members, sources := scenarioBenchSetup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := engineRun(b, x, members, sources, scenarioBenchTicks, depth, 0)
				if i == 0 {
					b.StopTimer()
					got := deliveredSum(out)
					if refDelivered == 0 {
						refDelivered = got
					} else if got != refDelivered {
						b.Fatalf("depth %d delivered %v bytes, want %v (identical across depths)",
							depth, got, refDelivered)
					}
					b.StartTimer()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*scenarioBenchTicks)/b.Elapsed().Seconds(), "ticks/s")
		})
	}
}

// BenchmarkEngineSerialTickBaseline runs the identical workload through
// the serial driver-pulled ixp.Tick loop — the pre-engine driver shape.
func BenchmarkEngineSerialTickBaseline(b *testing.B) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	x, members, sources := scenarioBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serialTickLoop(b, x, members, sources, scenarioBenchTicks)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*scenarioBenchTicks)/b.Elapsed().Seconds(), "ticks/s")
}
