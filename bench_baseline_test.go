package stellar_test

// A frozen replica of the seed's route-server update path, kept as the
// benchmark baseline for BenchmarkRouteServerSingleLockBaseline: one
// global mutex over the whole pipeline, a single-lock RIB whose Best is
// a sort of every path on every query, per-prefix export generation with
// a sorted target list, and one (peer, update) pair per exported prefix.
// The live implementation (internal/routeserver) replaced this with a
// prefix-sharded RIB, cached best paths, lock-free import checks and
// batched per-peer exports; benchmarking against the replica records the
// speedup and guards against regressing back into it.

import (
	"net/netip"
	"sort"
	"sync"

	"stellar/internal/bgp"
	"stellar/internal/fabric"
	"stellar/internal/flowmon"
	"stellar/internal/ixp"
	"stellar/internal/routeserver"
)

type seedPath struct {
	prefix netip.Prefix
	peer   string
	peerAS uint32
	attrs  bgp.PathAttrs
	seq    uint64
}

type seedPathKey struct {
	prefix netip.Prefix
	peer   string
}

// seedRouteServer is the seed's single-lock design, reduced to the parts
// the throughput benchmark exercises (no IRR policy, no subscribers).
type seedRouteServer struct {
	asn         uint32
	blackholeNH netip.Addr

	mu     sync.Mutex
	order  []string
	peers  map[string]uint32 // name -> ASN
	routes map[netip.Prefix]map[seedPathKey]*seedPath
	seq    uint64
}

func newSeedRouteServer(asn uint32, nh netip.Addr) *seedRouteServer {
	return &seedRouteServer{
		asn: asn, blackholeNH: nh,
		peers:  make(map[string]uint32),
		routes: make(map[netip.Prefix]map[seedPathKey]*seedPath),
	}
}

func (rs *seedRouteServer) addPeer(name string, asn uint32) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.peers[name] = asn
	rs.order = append(rs.order, name)
}

func (rs *seedRouteServer) isBlackhole(attrs *bgp.PathAttrs) bool {
	return attrs.HasCommunity(bgp.CommunityBlackhole) ||
		attrs.HasCommunity(bgp.MakeCommunity(uint16(rs.asn), 666))
}

// best re-sorts every path of the prefix, exactly like the seed table's
// Lookup-based Best.
func (rs *seedRouteServer) best(prefix netip.Prefix) *seedPath {
	m := rs.routes[prefix]
	out := make([]*seedPath, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return seedBetter(out[i], out[j]) })
	return out[0]
}

func seedBetter(a, b *seedPath) bool {
	if la, lb := a.attrs.PathLen(), b.attrs.PathLen(); la != lb {
		return la < lb
	}
	if a.attrs.Origin != b.attrs.Origin {
		return a.attrs.Origin < b.attrs.Origin
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.peer < b.peer
}

func (rs *seedRouteServer) handleUpdate(peer string, u *bgp.Update) ([]routeserver.PeerUpdate, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	peerAS, ok := rs.peers[peer]
	if !ok {
		return nil, routeserver.ErrUnknownPeer
	}
	var exports []routeserver.PeerUpdate
	for _, pp := range u.AllWithdrawn() {
		key := seedPathKey{prefix: pp.Prefix, peer: peer}
		m := rs.routes[pp.Prefix]
		if m == nil {
			continue
		}
		oldBest := rs.best(pp.Prefix)
		if _, ok := m[key]; !ok {
			continue
		}
		delete(m, key)
		if len(m) == 0 {
			delete(rs.routes, pp.Prefix)
		}
		exports = append(exports, rs.exportAfterChange(pp.Prefix, oldBest)...)
	}
	for _, pp := range u.AllAnnounced() {
		// The seed's import checks at benchmark shape: length gate plus
		// blackhole-community exception (no IRR policy configured).
		if pp.Prefix.Bits() > 24 && !rs.isBlackhole(&u.Attrs) {
			continue
		}
		oldBest := rs.best(pp.Prefix)
		rs.seq++
		m := rs.routes[pp.Prefix]
		if m == nil {
			m = make(map[seedPathKey]*seedPath)
			rs.routes[pp.Prefix] = m
		}
		m[seedPathKey{prefix: pp.Prefix, peer: peer}] = &seedPath{
			prefix: pp.Prefix, peer: peer, peerAS: peerAS,
			attrs: u.Attrs.Clone(), seq: rs.seq,
		}
		exports = append(exports, rs.exportAfterChange(pp.Prefix, oldBest)...)
	}
	return exports, nil
}

func (rs *seedRouteServer) exportAfterChange(prefix netip.Prefix, oldBest *seedPath) []routeserver.PeerUpdate {
	best := rs.best(prefix)
	if best == nil {
		var out []routeserver.PeerUpdate
		u := &bgp.Update{Withdrawn: []bgp.PathPrefix{{Prefix: prefix}}}
		for _, name := range rs.order {
			if oldBest != nil && name == oldBest.peer {
				continue
			}
			out = append(out, routeserver.PeerUpdate{Peer: name, Update: u})
		}
		return out
	}
	if oldBest != nil && oldBest == best {
		return nil
	}
	// Per-prefix target list with the seed's alphabetical sort.
	targets := make([]string, 0, len(rs.order))
	for _, name := range rs.order {
		if name != best.peer {
			targets = append(targets, name)
		}
	}
	sort.Strings(targets)
	attrs := best.attrs.Clone()
	if rs.isBlackhole(&attrs) && rs.blackholeNH.IsValid() {
		attrs.NextHop = rs.blackholeNH
		attrs.AddCommunity(bgp.CommunityNoExport)
	}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.PathPrefix{{Prefix: prefix}}}
	out := make([]routeserver.PeerUpdate, 0, len(targets))
	for _, name := range targets {
		out = append(out, routeserver.PeerUpdate{Peer: name, Update: u})
	}
	return out
}

// ---------------------------------------------------------------------
// Scenario-pipeline baseline: a frozen replica of the pre-sharding
// monitoring pipeline (the PR-2-era ixp.Scenario.Run), kept for
// BenchmarkScenarioPipelineBaseline. One victim per serial pass — N
// victims mean N sequential single-victim loops — with fresh offer
// slices every tick, the per-tick DeliveredByFlow map materialized on
// every port tick, every delivered flow pushed one record at a time
// through the retained map-based collector, and the per-tick active-peer
// count recomputed from the delivered-flow map. The live engine
// (ixp.Scenario.RunAll) replaced this with one parallel multi-victim
// fabric pass whose egress workers stream records into per-worker
// collector shards.

// seedScenarioVictim is one victim of the baseline scenario loop.
type seedScenarioVictim struct {
	port    string
	sources []ixp.Source
}

// seedScenarioRun replays the retained single-victim pipeline for every
// victim in sequence and returns the summed delivered bytes (a checksum
// the benchmark compares against the live engine).
func seedScenarioRun(x *ixp.IXP, victims []seedScenarioVictim, ticks int, dt float64) (float64, error) {
	const peerMinBps = 1e3
	var deliveredSum float64
	for _, v := range victims {
		mon := flowmon.NewMapCollector()
		samples := make([]ixp.Sample, 0, ticks)
		for tick := 0; tick < ticks; tick++ {
			var offers []fabric.Offer
			for _, src := range v.sources {
				offers = append(offers, src.Offers(tick, dt)...)
			}
			reports, err := x.Tick(fabric.TickOffers{v.port: offers}, dt)
			if err != nil {
				return 0, err
			}
			rep := reports[v.port]
			for flow, bytes := range rep.Result.DeliveredByFlow {
				mon.Observe(flowmon.Record{Bin: tick, Key: flow, Bytes: bytes})
			}
			samples = append(samples, ixp.Sample{
				Tick:         tick,
				Time:         float64(tick) * dt,
				OfferedBps:   rep.OfferedBytes * 8 / dt,
				DeliveredBps: rep.Result.DeliveredBytes * 8 / dt,
				ActivePeers:  x.ActivePeers(rep.Result, peerMinBps*dt/8),
			})
			deliveredSum += rep.Result.DeliveredBytes
		}
		_ = samples
		_ = mon
	}
	return deliveredSum, nil
}
